"""Unit tests for the CPU interpreter: semantics, traps, determinism."""

import pytest

from repro.isa import (
    AlignmentFault,
    ArithmeticTrap,
    HaltedMachine,
    IllegalPC,
    Machine,
    MemoryFault,
    assemble,
)


def run(source, ram_size=64, max_cycles=10_000):
    machine = Machine(assemble(source, ram_size=ram_size))
    machine.run(max_cycles)
    return machine


def run_body(body, **kwargs):
    return run(f".text\nstart: {body}\n halt", **kwargs)


class TestAluSemantics:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("add", 0xFFFFFFFF, 1, 0),            # wraparound
        ("sub", 3, 4, 0xFFFFFFFF),            # two's complement
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("mul", 7, 6, 42),
        ("mul", 0x10000, 0x10000, 0),          # 32-bit truncation
        ("divu", 17, 5, 3),
        ("remu", 17, 5, 2),
        ("sll", 1, 4, 16),
        ("srl", 16, 4, 1),
        ("slt", 0xFFFFFFFF, 0, 1),             # -1 < 0 signed
        ("sltu", 0xFFFFFFFF, 0, 0),            # max > 0 unsigned
    ])
    def test_r_type(self, op, a, b, expected):
        machine = run(f"""
            .text
start:  li   r1, {a & 0xFFFFFFFF}
        li   r2, {b & 0xFFFFFFFF}
        {op}  r3, r1, r2
        halt
""")
        assert machine.regs[3] == expected

    def test_sra_preserves_sign(self):
        machine = run_body("li r1, -8\n sra r3, r1, zero\n"
                           " li r2, 2\n sra r3, r1, r2")
        assert machine.regs[3] == ((-8 >> 2) & 0xFFFFFFFF)

    def test_srai_immediate(self):
        machine = run_body("li r1, -16\n srai r3, r1, 2")
        assert machine.regs[3] == ((-16 >> 2) & 0xFFFFFFFF)

    def test_lui_shifts_immediate(self):
        machine = run_body("lui r1, 0x1234")
        assert machine.regs[1] == 0x12340000

    def test_slti_signed_comparison(self):
        machine = run_body("li r1, -5\n slti r2, r1, 0")
        assert machine.regs[2] == 1

    def test_sltiu_unsigned_comparison(self):
        machine = run_body("li r1, -5\n sltiu r2, r1, 0")
        assert machine.regs[2] == 0


class TestRegisterZero:
    def test_writes_to_r0_are_discarded(self):
        machine = run_body("addi r0, zero, 99\n add r1, zero, zero")
        assert machine.regs[0] == 0
        assert machine.regs[1] == 0


class TestMemorySemantics:
    def test_word_roundtrip(self):
        machine = run_body("li r1, 0xABCD\n sw r1, 0(zero)\n lw r2, 0(zero)")
        assert machine.regs[2] == 0xABCD

    def test_byte_store_does_not_clobber_neighbours(self):
        machine = run("""
            .data
w:      .word 0x11223344
            .text
start:  li   r1, 0xFF
        sb   r1, w+1(zero)
        lw   r2, w(zero)
        halt
""")
        assert machine.regs[2] == 0x1122FF44

    def test_lb_sign_extends(self):
        machine = run_body("li r1, 0x80\n sb r1, 0(zero)\n lb r2, 0(zero)")
        assert machine.regs[2] == 0xFFFFFF80

    def test_lbu_zero_extends(self):
        machine = run_body("li r1, 0x80\n sb r1, 0(zero)\n lbu r2, 0(zero)")
        assert machine.regs[2] == 0x80

    def test_lh_sign_extends(self):
        machine = run_body("li r1, 0x8000\n sh r1, 0(zero)\n lh r2, 0(zero)")
        assert machine.regs[2] == 0xFFFF8000

    def test_lhu_zero_extends(self):
        machine = run_body("li r1, 0x8000\n sh r1, 0(zero)\n lhu r2, 0(zero)")
        assert machine.regs[2] == 0x8000

    def test_ram_initialized_from_data_image(self):
        machine = run("""
            .data
v:      .word 1234
            .text
start:  lw   r1, v(zero)
        halt
""")
        assert machine.regs[1] == 1234

    def test_uninitialized_ram_reads_zero(self):
        machine = run_body("lw r1, 32(zero)")
        assert machine.regs[1] == 0


class TestTraps:
    def test_load_out_of_bounds_raises_memory_fault(self):
        machine = Machine(assemble(
            ".text\nstart: lw r1, 1000(zero)\n halt", ram_size=64))
        with pytest.raises(MemoryFault):
            machine.run(10)
        assert machine.halted

    def test_store_out_of_bounds_raises_memory_fault(self):
        machine = Machine(assemble(
            ".text\nstart: li r1, -4\n sw r1, 0(r1)", ram_size=64))
        with pytest.raises(MemoryFault):
            machine.run(10)

    def test_unaligned_word_access_raises_alignment_fault(self):
        machine = Machine(assemble(".text\nstart: lw r1, 2(zero)"))
        with pytest.raises(AlignmentFault):
            machine.run(10)

    def test_division_by_zero_traps(self):
        machine = Machine(assemble(".text\nstart: divu r1, r1, zero"))
        with pytest.raises(ArithmeticTrap):
            machine.run(10)

    def test_jump_outside_rom_raises_illegal_pc(self):
        machine = Machine(assemble(".text\nstart: li r1, 999\n jr r1"))
        with pytest.raises(IllegalPC):
            machine.run(10)

    def test_trap_records_pc_and_cycle(self):
        machine = Machine(assemble(".text\nstart: nop\n lw r1, 2(zero)"))
        with pytest.raises(AlignmentFault) as exc_info:
            machine.run(10)
        assert exc_info.value.pc == 1
        assert exc_info.value.cycle == 1

    def test_stepping_halted_machine_raises(self):
        machine = Machine(assemble(".text\nstart: halt"))
        machine.run(10)
        with pytest.raises(HaltedMachine):
            machine.step()


class TestTimingAndControl:
    def test_cycle_counts_exactly(self):
        machine = run(".text\nstart: nop\n nop\n halt")
        assert machine.cycle == 3

    def test_falling_off_rom_end_halts_cleanly(self):
        machine = run(".text\nstart: nop\n nop")
        assert machine.halted
        assert machine.cycle == 2

    def test_branch_taken_redirects_pc(self):
        machine = run("""
            .text
start:  li   r1, 1
        bnez r1, skip
        li   r2, 1
skip:   halt
""")
        assert machine.regs[2] == 0

    def test_jal_links_return_address(self):
        machine = run("""
            .text
start:  jal  r5, target
target: halt
""")
        assert machine.regs[5] == 1

    def test_run_to_cycle_positions_exactly(self):
        machine = Machine(assemble(".text\nstart: nop\n nop\n nop\n halt"))
        machine.run_to_cycle(2)
        assert machine.cycle == 2
        assert not machine.halted

    def test_run_to_cycle_backwards_rejected(self):
        machine = Machine(assemble(".text\nstart: nop\n nop\n halt"))
        machine.run_to_cycle(2)
        with pytest.raises(ValueError, match="backwards"):
            machine.run_to_cycle(1)

    def test_determinism_two_runs_identical(self):
        prog = assemble("""
            .data
v:      .word 5
            .text
start:  lw   r1, v(zero)
        addi r1, r1, 1
        sw   r1, v(zero)
        out  r1
        halt
""")
        first, second = Machine(prog), Machine(prog)
        first.run(100)
        second.run(100)
        assert first.serial == second.serial
        assert first.ram == second.ram
        assert first.cycle == second.cycle


class TestDevices:
    def test_out_writes_low_byte(self):
        machine = run_body("li r1, 0x1FF\n out r1")
        assert machine.serial == bytes([0xFF])

    def test_detect_records_cycle_and_code(self):
        machine = run(".text\nstart: nop\n detect 7\n halt")
        assert machine.detections == [(2, 7)]

    def test_oracle_divergence_halts_machine(self):
        prog = assemble(".text\nstart: li r1, 'A'\n out r1\n li r1, 'B'\n"
                        " out r1\n halt")
        machine = Machine(prog, oracle=b"AX")
        machine.run(100)
        assert machine.diverged
        assert machine.halted
        assert machine.serial == b"AB"

    def test_oracle_excess_output_counts_as_divergence(self):
        prog = assemble(".text\nstart: li r1, 'A'\n out r1\n out r1\n halt")
        machine = Machine(prog, oracle=b"A")
        machine.run(100)
        assert machine.diverged

    def test_matching_oracle_does_not_divert(self):
        prog = assemble(".text\nstart: li r1, 'A'\n out r1\n halt")
        machine = Machine(prog, oracle=b"A")
        machine.run(100)
        assert not machine.diverged
        assert machine.halted


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        prog = assemble("""
            .data
v:      .word 0
            .text
start:  li   r1, 1
        sw   r1, v(zero)
        li   r2, 2
        out  r2
        halt
""")
        machine = Machine(prog)
        machine.run_to_cycle(2)
        state = machine.snapshot()
        machine.run(100)
        final_serial = bytes(machine.serial)
        machine.restore(state)
        assert machine.cycle == 2
        assert not machine.halted
        machine.run(100)
        assert bytes(machine.serial) == final_serial

    def test_snapshot_is_deep(self):
        prog = assemble(".data\nv: .word 0\n.text\nstart: li r1, 1\n"
                        " sw r1, v(zero)\n halt")
        machine = Machine(prog)
        state = machine.snapshot()
        machine.run(100)
        assert machine.ram[0] == 1
        machine.restore(state)
        assert machine.ram[0] == 0

    def test_flip_bit_changes_single_bit(self):
        machine = Machine(assemble(".text\nstart: halt", ram_size=8))
        machine.flip_bit(3, 5)
        assert machine.ram[3] == 1 << 5
        machine.flip_bit(3, 5)
        assert machine.ram[3] == 0

    def test_flip_bit_validates_arguments(self):
        machine = Machine(assemble(".text\nstart: halt", ram_size=8))
        with pytest.raises(ValueError):
            machine.flip_bit(8, 0)
        with pytest.raises(ValueError):
            machine.flip_bit(0, 8)
