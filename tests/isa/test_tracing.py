"""Unit tests for golden-run memory tracing."""

from repro.isa import Machine, MemoryTrace, READ, WRITE, assemble


def trace_of(source, ram_size=64):
    tracer = MemoryTrace()
    machine = Machine(assemble(source, ram_size=ram_size), tracer=tracer)
    machine.run(10_000)
    tracer.finish(machine.cycle)
    return tracer


class TestMemoryTrace:
    def test_store_records_write_at_correct_slot(self):
        tracer = trace_of("""
            .text
start:  li   r1, 5
        sb   r1, 0(zero)
        halt
""")
        events = tracer.accesses(0)
        assert [(e.slot, e.kind) for e in events] == [(2, WRITE)]

    def test_load_records_read(self):
        tracer = trace_of(".text\nstart: lbu r1, 0(zero)\n halt")
        assert [(e.slot, e.kind) for e in tracer.accesses(0)] == [(1, READ)]

    def test_word_access_touches_four_bytes(self):
        tracer = trace_of(".text\nstart: lw r1, 4(zero)\n halt")
        for addr in range(4, 8):
            assert [(e.slot, e.kind) for e in tracer.accesses(addr)] == \
                [(1, READ)]
        assert tracer.accesses(8) == []

    def test_halfword_access_touches_two_bytes(self):
        tracer = trace_of(".text\nstart: li r1, 1\n sh r1, 2(zero)\n halt")
        assert len(tracer.accesses(2)) == 1
        assert len(tracer.accesses(3)) == 1
        assert tracer.accesses(4) == []

    def test_events_per_byte_are_chronological(self):
        tracer = trace_of("""
            .text
start:  li   r1, 1
        sb   r1, 0(zero)
        lbu  r2, 0(zero)
        sb   r1, 0(zero)
        halt
""")
        slots = [e.slot for e in tracer.accesses(0)]
        assert slots == sorted(slots)
        assert [e.kind for e in tracer.accesses(0)] == [WRITE, READ, WRITE]

    def test_total_slots_equals_runtime(self):
        tracer = trace_of(".text\nstart: nop\n nop\n halt")
        assert tracer.total_slots == 3

    def test_touched_bytes_and_access_count(self):
        tracer = trace_of("""
            .text
start:  li   r1, 1
        sw   r1, 0(zero)
        lw   r2, 0(zero)
        halt
""")
        assert tracer.touched_bytes == 4
        assert tracer.access_count == 8  # 4 bytes written + 4 bytes read

    def test_untraced_machine_records_nothing(self):
        machine = Machine(assemble(
            ".text\nstart: li r1, 1\n sw r1, 0(zero)\n halt"))
        machine.run(100)
        assert machine.tracer is None
