"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblyError, Machine, Op, assemble


def run_program(source, ram_size=64, max_cycles=10_000):
    machine = Machine(assemble(source, ram_size=ram_size))
    machine.run(max_cycles)
    return machine


class TestDirectives:
    def test_byte_directive_lays_out_bytes(self):
        prog = assemble("""
            .data
a:      .byte 1, 2, 255
            .text
            halt
""")
        assert prog.data == bytes([1, 2, 255])
        assert prog.data_labels["a"] == 0

    def test_word_directive_is_little_endian_and_aligned(self):
        prog = assemble("""
            .data
b:      .byte 1
w:      .word 0x11223344
            .text
            halt
""")
        assert prog.data_labels["w"] == 4  # aligned past the byte
        assert prog.data[4:8] == bytes([0x44, 0x33, 0x22, 0x11])

    def test_word_forward_reference_to_data_label(self):
        prog = assemble("""
            .data
ptr:    .word target
target: .word 7
            .text
            halt
""")
        assert prog.data[0:4] == (4).to_bytes(4, "little")

    def test_space_reserves_zero_bytes(self):
        prog = assemble("""
            .data
gap:    .space 5
end:    .byte 9
            .text
            halt
""")
        assert prog.data_labels["end"] == 5
        assert prog.data[:5] == bytes(5)

    def test_align_pads_to_boundary(self):
        prog = assemble("""
            .data
a:      .byte 1
        .align 8
b:      .byte 2
            .text
            halt
""")
        assert prog.data_labels["b"] == 8

    def test_asciiz_appends_nul(self):
        prog = assemble("""
            .data
s:      .asciiz "hi"
            .text
            halt
""")
        assert prog.data == b"hi\0"

    def test_ascii_with_escapes(self):
        prog = assemble("""
            .data
s:      .ascii "a\\nb"
            .text
            halt
""")
        assert prog.data == b"a\nb"

    def test_equ_constant_usable_as_immediate(self):
        machine = run_program("""
            .equ VALUE, 42
            .text
start:  addi r1, zero, VALUE
            out  r1
            halt
""")
        assert machine.serial == bytes([42])

    def test_duplicate_equ_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble(".equ A, 1\n.equ A, 2\n.text\nhalt")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".bogus 3")

    def test_align_requires_power_of_two(self):
        with pytest.raises(AssemblyError, match="power of two"):
            assemble(".data\n.align 3\n.text\nhalt")


class TestLabels:
    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble(".text\na: nop\na: nop")

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble(".text\n j nowhere")

    def test_label_and_instruction_on_one_line(self):
        prog = assemble(".text\nstart: nop\n j start")
        assert prog.labels["start"] == 0
        assert prog.rom[1].imm == 0

    def test_entry_defaults_to_zero_without_start(self):
        prog = assemble(".text\nnop\nhalt")
        assert prog.entry == 0

    def test_entry_is_start_label(self):
        prog = assemble(".text\nnop\nstart: halt")
        assert prog.entry == 1


class TestPseudoInstructions:
    def test_li_small_is_one_instruction(self):
        prog = assemble(".text\n li r1, 100")
        assert len(prog.rom) == 1
        assert prog.rom[0].op == Op.ADDI

    def test_li_large_expands_to_lui_ori(self):
        prog = assemble(".text\n li r1, 0x12345678")
        assert [i.op for i in prog.rom] == [Op.LUI, Op.ORI]
        machine = Machine(prog)
        machine.run(10)
        assert machine.regs[1] == 0x12345678

    def test_li_negative(self):
        machine = run_program(".text\nstart: li r1, -2\n halt")
        assert machine.regs[1] == 0xFFFFFFFE

    def test_li_large_negative_roundtrips(self):
        machine = run_program(".text\nstart: li r1, -100000\n halt")
        assert machine.regs[1] == (-100000) & 0xFFFFFFFF

    def test_mv_copies_register(self):
        machine = run_program(".text\nstart: li r1, 7\n mv r2, r1\n halt")
        assert machine.regs[2] == 7

    def test_call_and_ret(self):
        machine = run_program("""
            .text
start:  call sub
        li   r2, 2
        halt
sub:    li   r1, 1
        ret
""")
        assert machine.regs[1] == 1
        assert machine.regs[2] == 2

    def test_swapped_branch_bgt(self):
        machine = run_program("""
            .text
start:  li   r1, 5
        li   r2, 3
        bgt  r1, r2, big
        li   r3, 0
        halt
big:    li   r3, 1
        halt
""")
        assert machine.regs[3] == 1

    def test_beqz_branches_on_zero(self):
        machine = run_program("""
            .text
start:  beqz r1, taken
        halt
taken:  li   r2, 9
        halt
""")
        assert machine.regs[2] == 9

    def test_lpc_loads_text_label_index(self):
        machine = run_program("""
            .text
start:  lpc  r1, target
        jr   r1
        halt
target: li   r2, 4
        halt
""")
        assert machine.regs[2] == 4

    def test_char_immediates(self):
        machine = run_program(".text\nstart: li r1, 'A'\n out r1\n halt")
        assert machine.serial == b"A"

    def test_escaped_char_immediate(self):
        machine = run_program(".text\nstart: li r1, '\\n'\n out r1\n halt")
        assert machine.serial == b"\n"


class TestOperandParsing:
    def test_register_aliases(self):
        prog = assemble(".text\n addi sp, zero, 4\n addi ra, zero, 1")
        assert prog.rom[0].rd == 15
        assert prog.rom[1].rd == 14

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble(".text\n addi r16, zero, 0")

    def test_address_with_label_offset(self):
        machine = run_program("""
            .data
v:      .word 0
w:      .word 0
            .text
start:  li   r1, 3
        sw   r1, w(zero)
        lw   r2, w(zero)
        halt
""")
        assert machine.regs[2] == 3

    def test_address_label_plus_offset(self):
        machine = run_program("""
            .data
arr:    .word 0, 0
            .text
start:  li   r1, 9
        sw   r1, arr+4(zero)
        lw   r2, arr+4(zero)
        halt
""")
        assert machine.regs[2] == 9

    def test_label_as_offset_with_base_register(self):
        machine = run_program("""
            .data
arr:    .word 11, 22
            .text
start:  li   r3, 4
        lw   r1, arr(r3)
        halt
""")
        assert machine.regs[1] == 22

    def test_immediate_out_of_range_rejected(self):
        with pytest.raises(AssemblyError, match="16-bit range"):
            assemble(".text\n addi r1, zero, 70000")

    def test_shift_amount_out_of_range_rejected(self):
        with pytest.raises(AssemblyError, match="shift amount"):
            assemble(".text\n slli r1, r1, 32")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError, match="expected operands"):
            assemble(".text\n add r1, r2")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble(".text\n frobnicate r1")

    def test_comments_are_stripped(self):
        prog = assemble(".text\n nop ; comment\n nop # other\n")
        assert len(prog.rom) == 2

    def test_instruction_in_data_segment_rejected(self):
        with pytest.raises(AssemblyError, match="data segment"):
            assemble(".data\n nop")

    def test_data_exceeding_ram_rejected(self):
        with pytest.raises(AssemblyError, match="exceeds RAM"):
            assemble(".data\n.space 100\n.text\nhalt", ram_size=50)


class TestDisassembly:
    def test_disassemble_lists_every_instruction(self):
        prog = assemble(".text\nstart: nop\n j start")
        listing = prog.disassemble()
        assert "start:" in listing
        assert listing.count("\n") == 1
