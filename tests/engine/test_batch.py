"""Differential tests: lockstep batch replay vs the scalar oracle.

:class:`~repro.engine.batch.LockstepLanes` executes N same-slot faulty
experiments as vectorized arrays; each lane must exit (halt / trap /
divergence) or be evicted (control-flow disagreement) with *exactly*
the observation a scalar :class:`~repro.isa.cpu.Machine` run of the
same fault would produce.  Evicted lanes carry a restorable
:class:`MachineState`, so the test continues them on a scalar machine
and compares finals too.
"""

import random

import pytest

from repro.campaign import record_golden
from repro.engine.batch import (
    DIVERGE,
    EVICT,
    HALT,
    TRAP,
    LockstepLanes,
)
from repro.isa import CPUException, Machine
from repro.programs import all_programs, micro

PROGRAMS = all_programs()


def scalar_final(program, state, fault, limit, oracle):
    """Run one injected experiment on the interpreter oracle."""
    machine = Machine(program, oracle=oracle)
    machine.restore(state)
    fault(machine)
    trap = ""
    try:
        machine.run(limit)
    except CPUException as exc:
        trap = exc.trap_name
    return {
        "cycle": machine.cycle,
        "halted": machine.halted,
        "diverged": machine.diverged,
        "trap": trap,
        "serial": bytes(machine.serial),
        "detections": tuple(machine.detections),
    }


def lane_faults(rng, program, n):
    """n random single-bit faults (mix of memory and register flips)."""
    faults = []
    for _ in range(n):
        if rng.random() < 0.5:
            addr, bit = rng.randrange(program.ram_size), rng.randrange(8)
            faults.append(
                lambda m, a=addr, b=bit: m.flip_bit(a, b))
        else:
            reg, bit = rng.randrange(1, 16), rng.randrange(32)
            faults.append(
                lambda m, r=reg, b=bit: m.flip_register_bit(r, b))
    return faults


def run_batch(program, state, faults, limit, oracle):
    """Run the lane batch to ``limit``; settle evictions on a scalar
    machine; return one observation dict per lane."""
    lanes = LockstepLanes(program, state, len(faults), oracle=oracle)
    for pos, fault in enumerate(faults):
        fault(lanes.lane_view(pos))
    results = [None] * len(faults)
    scalar = Machine(program, oracle=oracle)

    def settle():
        for exit_ in lanes.pop_exits():
            if exit_.kind == EVICT:
                scalar.restore(exit_.state)
                trap = ""
                try:
                    scalar.run(limit)
                except CPUException as exc:
                    trap = exc.trap_name
                results[exit_.lane] = {
                    "cycle": scalar.cycle,
                    "halted": scalar.halted,
                    "diverged": scalar.diverged,
                    "trap": trap,
                    "serial": bytes(scalar.serial),
                    "detections": tuple(scalar.detections),
                }
            else:
                results[exit_.lane] = {
                    "cycle": exit_.cycle,
                    "halted": True,
                    "diverged": exit_.kind == DIVERGE,
                    "trap": exit_.trap,
                    "serial": bytes(exit_.serial),
                    "detections": tuple(exit_.detections),
                }

    lanes.run_to(limit)
    settle()
    for pos in range(lanes.n - 1, -1, -1):
        # Timeout survivors: still running at the budget.
        lane = lanes.ids[pos]
        results[lane] = {
            "cycle": lanes.cycle,
            "halted": False,
            "diverged": False,
            "trap": "",
            "serial": bytes(lanes.serial[pos]),
            "detections": tuple(lanes.detections[pos]),
        }
    return results


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_lanes_match_scalar_oracle(name):
    """Random same-slot batches agree lane-for-lane with the oracle."""
    program = PROGRAMS[name]()
    golden = record_golden(program)
    limit = 4 * golden.cycles + 100
    rng = random.Random(f"batch:{name}")
    for trial in range(6):
        slot = rng.randrange(1, golden.cycles + 1)
        reference = Machine(program)
        reference.run_to_cycle(slot - 1)
        state = reference.snapshot()
        n = rng.choice([2, 5, 16])
        faults = lane_faults(rng, program, n)
        got = run_batch(program, state, faults, limit, golden.output)
        want = [scalar_final(program, state, fault, limit,
                             golden.output)
                for fault in faults]
        assert got == want, f"slot={slot} n={n} trial={trial}"


def test_identical_lanes_never_evict():
    """Same fault in every lane → pure lockstep, one shared exit."""
    program = PROGRAMS["counter"]()
    golden = record_golden(program)
    reference = Machine(program)
    reference.run_to_cycle(4)
    state = reference.snapshot()
    lanes = LockstepLanes(program, state, 8, oracle=golden.output)
    for pos in range(8):
        lanes.lane_view(pos).flip_bit(0, 3)
    lanes.run_to(10 * golden.cycles)
    exits = lanes.pop_exits()
    assert lanes.n == 0
    assert len(exits) == 8
    assert len({(e.kind, e.cycle, e.trap, e.serial) for e in exits}) == 1
    assert all(e.kind != EVICT for e in exits)


def test_branch_disagreement_evicts_minority():
    """A lane whose flipped flag takes the other branch arm is evicted
    with a state that resumes exactly where it diverged."""
    from repro.isa import assemble

    program = assemble("""
        li r1, 10
    loop:
        addi r1, r1, -1
        bnez r1, loop
        halt
    """, name="evict-loop", ram_size=4)
    golden = record_golden(program)
    reference = Machine(program)
    reference.run_to_cycle(1)  # r1 loaded, about to enter the loop
    state = reference.snapshot()
    # Three lanes with a harmless scratch-register fault, one lane with
    # the loop counter flipped: its bnez disagrees with the majority at
    # a deterministic cycle and it must be evicted, not mis-executed.
    faults = [lambda m: m.flip_register_bit(7, 0)] * 3 \
        + [lambda m: m.flip_register_bit(1, 4)]
    got = run_batch(program, state, faults,
                    40 * golden.cycles + 100, golden.output)
    want = [scalar_final(program, state, fault,
                         40 * golden.cycles + 100, golden.output)
            for fault in faults]
    assert got == want
    # And the eviction really happened (the minority lane continued on
    # a scalar machine to a different cycle count than the majority).
    assert got[3]["cycle"] != got[0]["cycle"]


def test_lane_digest_matches_scalar_digest():
    """Digests drive convergence: lane digests equal scalar digests."""
    program = micro.checksum_loop(2)
    reference = Machine(program)
    reference.run_to_cycle(6)
    state = reference.snapshot()
    lanes = LockstepLanes(program, state, 3)
    scalars = []
    for pos in range(3):
        lanes.lane_view(pos).flip_bit(pos, 1)
        machine = Machine(program)
        machine.restore(state)
        machine.flip_bit(pos, 1)
        scalars.append(machine)
    target = state.cycle + 5
    lanes.run_to(target)
    for machine in scalars:
        machine.run(target)
    assert lanes.n == 3
    for pos in range(3):
        assert lanes.digest(pos) == scalars[pos].state_digest()
        assert lanes.lane_state(pos, lanes.pc, lanes.cycle) \
            == scalars[pos].snapshot()


def test_lane_view_validation_matches_machine():
    program = micro.counter(1)
    reference = Machine(program)
    state = reference.snapshot()
    lanes = LockstepLanes(program, state, 2)
    view = lanes.lane_view(0)
    for call in (lambda: view.flip_bit(program.ram_size, 0),
                 lambda: view.flip_bit(0, 8),
                 lambda: view.flip_register_bit(16, 0),
                 lambda: view.flip_register_bit(0, 32)):
        with pytest.raises((IndexError, ValueError)):
            call()
    # The scalar machine rejects the same coordinates.
    for call in (lambda: reference.flip_bit(program.ram_size, 0),
                 lambda: reference.flip_bit(0, 8),
                 lambda: reference.flip_register_bit(16, 0),
                 lambda: reference.flip_register_bit(0, 32)):
        with pytest.raises((IndexError, ValueError)):
            call()


def test_halted_state_rejected():
    program = micro.counter(1)
    machine = Machine(program)
    machine.run(10_000_000)
    assert machine.halted
    with pytest.raises(ValueError):
        LockstepLanes(program, machine.snapshot(), 2)


def test_exit_kinds_are_distinct():
    assert len({HALT, TRAP, DIVERGE, EVICT}) == 4
