"""Pack planner, auto-tier planner and lane re-admission.

Three layers of the batch tier's win-envelope machinery:

* :func:`repro.engine.plan.plan_tiers` — the geometry-driven tier
  choice behind ``--engine auto`` (width targets, slot ranges, the
  conservative compiled fallback).
* :class:`BatchExperimentExecutor`'s pack planning — thin adjacent-slot
  groups merging into one lockstep pack instead of falling back to
  scalar one slot at a time.
* Lane re-admission — an evicted lane whose scalar continuation
  rejoins the pack's shared pc in phase re-enters lockstep; outcomes
  must stay bit-identical to pure scalar execution either way.
"""

from collections import deque

import pytest

from repro.campaign import ExecutorConfig, record_golden
from repro.campaign.experiment import (
    BatchExperimentExecutor,
    ExperimentExecutor,
)
from repro.engine import AUTO, ENGINES
from repro.engine.plan import SlotRange, _ranges, plan_tiers
from repro.faultspace import get_domain
from repro.programs import all_programs, hi, micro, sync2

DOMAINS = ["memory", "register", "burst2", "burst4", "stuck", "pc"]


@pytest.fixture(scope="module")
def sync2_golden():
    return record_golden(sync2.baseline(4))


@pytest.fixture(scope="module")
def hi_golden():
    return record_golden(hi.baseline())


def experiment_coords(golden, domain, *, stride=1, cap=None):
    """Every representative experiment coordinate, slot-sorted."""
    domain = get_domain(domain)
    coords = []
    for interval in domain.build_partition(golden).live_classes():
        for index in range(domain.experiment_count(interval)):
            coords.append(domain.experiment_coordinate(interval, index))
    coords = coords[::stride]
    return coords[:cap] if cap is not None else coords


class TestTierPlanner:
    def test_pc_domain_plans_scalar(self, sync2_golden):
        plan = plan_tiers(sync2_golden, "pc")
        assert plan.engine == "compiled"
        assert plan.batched_fraction == 0.0
        assert "scalar" in plan.reason

    def test_tiny_campaign_plans_interp(self):
        golden = record_golden(micro.counter(2))
        plan = plan_tiers(golden, "memory")
        assert plan.engine == "interp"

    def test_wide_slots_plan_batch(self, sync2_golden):
        # With the break-even lowered beneath the real slot widths the
        # geometry says packs stay wide, so the planner commits to
        # batch and reports the work fraction that justified it.
        plan = plan_tiers(sync2_golden, "memory", breakeven=4)
        assert plan.engine == "batch"
        assert plan.batched_fraction >= 0.5
        assert plan.total_experiments > 0

    def test_narrow_slots_plan_compiled(self, sync2_golden):
        plan = plan_tiers(sync2_golden, "memory", breakeven=10**6)
        assert plan.engine == "compiled"
        assert plan.batched_fraction == 0.0

    def test_ranges_are_ordered_and_disjoint(self, sync2_golden):
        plan = plan_tiers(sync2_golden, "memory", breakeven=4)
        assert plan.ranges
        prev_stop = 0
        for rng in plan.ranges:
            assert rng.start <= rng.stop
            assert rng.start > prev_stop
            prev_stop = rng.stop
            assert rng.tier in ("batch", "compiled")
            assert rng.peak_width >= 1
        assert max(r.peak_width for r in plan.ranges) == plan.peak_width

    def test_range_collapsing_respects_adjacency(self):
        # Adjacent same-tier slots merge; a gap or a tier flip cuts.
        widths = {1: 2, 2: 3, 3: 200, 4: 250, 7: 1}
        assert _ranges(widths, 128) == (
            SlotRange(1, 2, "compiled", 3),
            SlotRange(3, 4, "batch", 250),
            SlotRange(7, 7, "compiled", 1),
        )

    def test_plan_deterministic(self, sync2_golden):
        assert (plan_tiers(sync2_golden, "memory")
                == plan_tiers(sync2_golden, "memory"))

    def test_auto_engine_resolves_to_planned_tier(self, sync2_golden):
        plan = AUTO.plan(sync2_golden, "memory")
        assert AUTO.resolve(sync2_golden, "memory") \
            is ENGINES[plan.engine]

    def test_executor_config_auto_builds_planned_executor(
            self, sync2_golden):
        executor = ExecutorConfig(engine="auto").build(sync2_golden)
        plan = AUTO.plan(sync2_golden, "memory")
        expected = (BatchExperimentExecutor
                    if ENGINES[plan.engine].batch
                    else ExperimentExecutor)
        assert type(executor) is expected


class TestPackPlanning:
    def test_pack_width_accumulates_adjacent_slots(self, hi_golden):
        executor = BatchExperimentExecutor(hi_golden)
        lanes = executor.MIN_LANES
        # Followers at non-descending slots count toward the pack.
        assert executor._pack_width(
            2, 4, deque([(5, [0] * 4), (6, [0] * lanes)])) >= lanes
        # A descending slot can never be admitted: accumulation stops.
        assert executor._pack_width(2, 4, deque([(3, [0] * 100)])) == 2
        # No followers at all: the stretch stands alone.
        assert executor._pack_width(2, 4, deque()) == 2

    def test_pack_width_stops_at_min_lanes(self, hi_golden):
        executor = BatchExperimentExecutor(hi_golden)
        lanes = executor.MIN_LANES
        # The probe answers "is it >= MIN_LANES", nothing more — it
        # must not walk the whole deque once the threshold is reached.
        width = executor._pack_width(
            lanes, 4, deque([(5, [0] * 100), (6, [0] * 100)]))
        assert width == lanes

    def test_thin_adjacent_groups_share_packs(self, sync2_golden):
        # One representative per class: every same-slot group is far
        # below MIN_LANES, so without cross-slot admission everything
        # would run scalar.  With it, adjacent groups pool into wide
        # packs — and the results stay bit-identical to scalar.
        domain = get_domain("memory")
        coords = [domain.experiment_coordinate(interval, 0)
                  for interval
                  in domain.build_partition(sync2_golden).live_classes()]
        coords = coords[:300]
        slots = {coord.slot for coord in coords}
        scalar = ExperimentExecutor(sync2_golden)
        batch = BatchExperimentExecutor(sync2_golden)
        assert batch.run_many(coords) == [scalar.run(c) for c in coords]
        assert batch.packs_opened > 0
        # Far fewer packs than slots: adjacent slots shared packs.
        assert batch.packs_opened < len(slots) / 2
        # And the achieved mean width cleared the scalar-fallback bar.
        mean_width = batch.packed_lanes / batch.packs_opened
        assert mean_width >= batch.MIN_LANES

    def test_admission_respects_pack_target(self, sync2_golden):
        # Cross-slot admission stops growing a pack once PACK_TARGET is
        # reached; groups are admitted whole, so a pack can overshoot
        # by at most the last group's width (here capped at 4).
        domain = get_domain("memory")
        coords = []
        taken: dict[int, int] = {}
        for interval in domain.build_partition(
                sync2_golden).live_classes():
            coord = domain.experiment_coordinate(interval, 0)
            if taken.get(coord.slot, 0) < 4:  # keep every group thin
                taken[coord.slot] = taken.get(coord.slot, 0) + 1
                coords.append(coord)
        batch = BatchExperimentExecutor(sync2_golden)
        batch.run_many(coords)
        assert batch.packs_opened > 0
        mean_width = batch.packed_lanes / batch.packs_opened
        assert mean_width <= batch.PACK_TARGET + 4


class TestReadmissionDifferential:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_batch_equals_scalar(self, hi_golden, domain):
        coords = experiment_coords(hi_golden, domain, cap=300)
        scalar = ExperimentExecutor(hi_golden, domain=domain)
        batch = BatchExperimentExecutor(hi_golden, domain=domain)
        assert batch.run_many(coords) == [scalar.run(c) for c in coords]

    def test_readmission_fires_and_stays_exact(self):
        # Pinned combination known to re-admit lanes: stuck-at faults
        # evict armed lanes before stores, the latch releases on the
        # scalar continuation, and the lane rejoins the pack in phase.
        golden = record_golden(all_programs()["hi-dftprime4"]())
        coords = experiment_coords(golden, "stuck")
        scalar = ExperimentExecutor(golden, domain="stuck")
        batch = BatchExperimentExecutor(golden, domain="stuck")
        assert batch.run_many(coords) == [scalar.run(c) for c in coords]
        assert batch.readmitted_lanes > 0
        assert batch.scalar_tail_experiments > 0

    def test_scalar_executor_reports_zero_pack_counters(self, hi_golden):
        executor = ExperimentExecutor(hi_golden)
        executor.run_many(experiment_coords(hi_golden, "memory", cap=40))
        assert executor.scalar_tail_experiments == 0
        assert executor.readmitted_lanes == 0
        assert executor.packs_opened == 0
