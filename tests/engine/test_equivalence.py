"""Campaign-level engine equivalence: the acceptance gate for the
compiled execution core.

The same campaign (full scan, brute force, sampling; every registered
fault domain; convergence and slicing on and off) run under the
``interp``, ``compiled``, ``batch`` and ``auto`` engines must produce
bit-for-bit identical results: equal outcome maps and records, equal
journal rows, and byte-identical exported CSV files.  The engine knob
is a pure optimization — any observable difference is a bug.  ``auto``
exercises the tier planner on top: whatever tier it picks per
(golden, domain) must land on the same bits as the rest.
"""

import sqlite3

import pytest

from repro.campaign import (
    ExecutorConfig,
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.campaign.database import export_class_results_csv
from repro.programs import hi, micro

ENGINE_NAMES = ["interp", "compiled", "batch", "auto"]


@pytest.fixture(scope="module")
def hi_golden():
    return record_golden(hi.baseline())


@pytest.fixture(scope="module")
def counter_golden():
    return record_golden(micro.counter(2))


def scan_signature(result):
    return (result.class_outcomes, result.weighted_counts(),
            result.weighted_failure_count())


class TestFullScanEquivalence:
    @pytest.mark.parametrize(
        "domain", ["memory", "register", "burst2", "stuck", "pc"])
    def test_scan_identical_across_engines(self, hi_golden, domain,
                                           tmp_path):
        results = {}
        for engine in ENGINE_NAMES:
            results[engine] = run_full_scan(
                hi_golden, domain=domain, keep_records=True,
                config=ExecutorConfig(engine=engine))
        base = results["interp"]
        for engine in ENGINE_NAMES[1:]:
            other = results[engine]
            assert scan_signature(other) == scan_signature(base)
            assert other.records == base.records

        # Exported CSVs are byte-identical.
        blobs = {}
        for engine, result in results.items():
            path = tmp_path / f"{domain}-{engine}.csv"
            export_class_results_csv(result, path)
            blobs[engine] = path.read_bytes()
        for engine in ENGINE_NAMES[1:]:
            assert blobs[engine] == blobs["interp"], engine

    def test_scan_without_convergence_or_snapshots(self, counter_golden):
        """The slow paths (no early-exit, no fast-forward) agree too."""
        base = None
        for engine in ENGINE_NAMES:
            result = run_full_scan(
                counter_golden,
                config=ExecutorConfig(engine=engine,
                                      use_convergence=False,
                                      use_snapshots=False,
                                      early_stop=False))
            if base is None:
                base = result
            else:
                assert scan_signature(result) == scan_signature(base)

    def test_parallel_scan_matches_serial(self, hi_golden):
        serial = run_full_scan(
            hi_golden, config=ExecutorConfig(engine="batch"))
        parallel = run_full_scan(
            hi_golden, jobs=2, config=ExecutorConfig(engine="batch"))
        assert scan_signature(parallel) == scan_signature(serial)

    def test_journal_rows_identical(self, counter_golden, tmp_path):
        """Journaled campaigns leave identical class-result rows."""
        dumps = {}
        for engine in ENGINE_NAMES:
            path = tmp_path / f"journal-{engine}.sqlite"
            run_full_scan(counter_golden,
                          config=ExecutorConfig(engine=engine),
                          journal=path)
            conn = sqlite3.connect(path)
            try:
                tables = sorted(
                    name for (name,) in conn.execute(
                        "SELECT name FROM sqlite_master "
                        "WHERE type = 'table'")
                    if "class" in name or "result" in name)
                assert tables, "no result tables journaled"
                dump = []
                for table in tables:
                    columns = [row[1] for row in conn.execute(
                        f"PRAGMA table_info({table})")]
                    keep = [c for c in columns
                            if c not in ("id", "campaign_id")]
                    dump.append((table, sorted(
                        conn.execute(
                            f"SELECT {', '.join(keep)} FROM {table}")
                        .fetchall())))
                dumps[engine] = dump
            finally:
                conn.close()
        for engine in ENGINE_NAMES[1:]:
            assert dumps[engine] == dumps["interp"], engine

    def test_engine_resume_interoperates(self, counter_golden, tmp_path):
        """A journal written under one engine resumes under another —
        the engine is deliberately not part of the campaign key."""
        path = tmp_path / "switch.sqlite"
        first = run_full_scan(counter_golden,
                              config=ExecutorConfig(engine="interp"),
                              journal=path)
        second = run_full_scan(counter_golden,
                               config=ExecutorConfig(engine="batch"),
                               journal=path)
        assert scan_signature(second) == scan_signature(first)


class TestBruteForceEquivalence:
    @pytest.mark.parametrize(
        "domain", ["memory", "register", "burst2", "stuck", "pc"])
    def test_brute_force_identical(self, counter_golden, domain):
        base = None
        for engine in ENGINE_NAMES:
            result = run_brute_force(
                counter_golden, domain=domain,
                config=ExecutorConfig(engine=engine))
            if base is None:
                base = result
            else:
                assert result.outcomes == base.outcomes
                assert result.counts() == base.counts()

    def test_brute_force_agrees_with_scan_per_engine(self,
                                                     counter_golden):
        """Each engine independently satisfies the pruning invariant."""
        for engine in ENGINE_NAMES:
            config = ExecutorConfig(engine=engine)
            scan = run_full_scan(counter_golden, config=config)
            brute = run_brute_force(counter_golden, config=config)
            assert scan.weighted_counts() == brute.counts()


class TestStuckAtBatchEviction:
    """The batch engine's persistent-fault path: a store covering a
    lane's armed stuck-at latch retires that lane *before* the store so
    the scalar machine re-executes it with exact write-wins semantics,
    and batched stuck-at campaigns still match the scalar executor."""

    def test_covering_store_evicts_the_latched_lane(self, counter_golden):
        from repro.engine.batch import EVICT, HALT, LockstepLanes
        from repro.isa.cpu import Machine

        golden = counter_golden
        machine = Machine(golden.program)
        machine.run_to_cycle(1)
        state = machine.snapshot()
        # Pick a byte the program provably stores to after the arming
        # point, straight from the golden memory trace.
        addr, release = min(
            (a, e.slot)
            for a in range(golden.program.ram_size)
            for e in golden.trace.accesses(a)
            if e.is_write and e.slot > state.cycle)
        lanes = LockstepLanes(golden.program, state, 2,
                              oracle=golden.output)
        # Arm with the bit's current value: the lane stays on the golden
        # trajectory, so only the eviction can retire it early.
        value = int(lanes.ram[0, addr]) & 1
        lanes.lane_view(0).stuck_at(addr, 0, value)
        lanes.run_to(golden.cycles + 1)
        exits = {e.lane: e for e in lanes.pop_exits()}
        evicted = exits[0]
        assert evicted.kind == EVICT
        # The hand-off state still carries the armed latch and stops at
        # the cycle *before* the covering store executes.
        assert evicted.state.stuck == (addr, 0, value)
        assert evicted.state.cycle == release - 1
        # The unfaulted lane runs to completion inside the batch.
        assert exits[1].kind == HALT

    def test_batched_stuck_records_match_scalar(self, counter_golden):
        from repro.campaign.experiment import (
            BatchExperimentExecutor,
            ExperimentExecutor,
        )
        from repro.faultspace import STUCK

        golden = counter_golden
        space = STUCK.fault_space(golden)
        coords = list(STUCK.slot_coordinates(space, 2))
        assert len(coords) >= BatchExperimentExecutor.MIN_LANES
        scalar = ExperimentExecutor(golden, domain=STUCK).run_many(coords)
        batch = BatchExperimentExecutor(golden,
                                        domain=STUCK).run_many(coords)
        assert batch == scalar


class TestSamplingEquivalence:
    def test_sampling_identical_across_engines(self, hi_golden):
        base = None
        for engine in ENGINE_NAMES:
            result = run_sampling(hi_golden, 64, seed=7,
                                  config=ExecutorConfig(engine=engine))
            if base is None:
                base = result
            else:
                assert result.counts() == base.counts()
                assert result.failure_count() == base.failure_count()


class TestCLIEngineFlag:
    def test_scan_command_accepts_engine(self, tmp_path, capsys):
        from repro.cli import main

        outputs = {}
        for engine in ENGINE_NAMES:
            main(["scan", "hi", "--engine", engine])
            outputs[engine] = capsys.readouterr().out
        for engine in ENGINE_NAMES[1:]:
            assert outputs[engine] == outputs["interp"], engine

    def test_unknown_engine_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scan", "hi", "--engine", "turbo"])
