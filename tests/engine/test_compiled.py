"""Differential tests: the template-JIT engine vs the interpreter oracle.

Every test here runs the same program (often with a fault injected)
on a plain :class:`~repro.isa.cpu.Machine` and on a
:class:`~repro.engine.compiled.CompiledMachine` and asserts *bit
identity* — registers, RAM, pc, cycle, serial output, detection log,
trap type/message/location, and the state digest the convergence
early-exit keys on.  The interpreter is deliberately simple; the JIT
is only allowed to be faster, never different.
"""

import random

import pytest

from repro.engine import (
    BATCH,
    COMPILED,
    ENGINES,
    INTERP,
    get_engine,
)
from repro.engine.compiled import CompiledMachine, compile_program
from repro.isa import CPUException, Machine, assemble
from repro.programs import all_programs, micro


def final_state(machine):
    """Everything an experiment's classification can observe."""
    return {
        "pc": machine.pc,
        "cycle": machine.cycle,
        "halted": machine.halted,
        "diverged": machine.diverged,
        "regs": list(machine.regs),
        "ram": bytes(machine.ram),
        "serial": bytes(machine.serial),
        "detections": list(machine.detections),
        "digest": machine.state_digest(),
    }


def run_pair(program, limit, *, oracle=None, mutate=None):
    """Run interpreter and JIT side by side; return both observations.

    ``mutate(machine)`` applies the same fault to both machines before
    the run.  Trap identity (type, message, pc, cycle) is part of the
    observation.
    """
    results = []
    for cls in (Machine, CompiledMachine):
        machine = cls(program, oracle=oracle)
        if mutate is not None:
            mutate(machine)
        trap = None
        try:
            machine.run(limit)
        except CPUException as exc:
            trap = (type(exc).__name__, str(exc), exc.pc, exc.cycle)
        state = final_state(machine)
        state["trap"] = trap
        results.append(state)
    return results


def assert_identical(program, limit, *, oracle=None, mutate=None):
    interp, jit = run_pair(program, limit, oracle=oracle, mutate=mutate)
    assert interp == jit


PROGRAMS = all_programs()


class TestGoldenRuns:
    """Fault-free runs of every registry program are bit-identical."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_full_run(self, name):
        assert_identical(PROGRAMS[name](), 10_000_000)

    @pytest.mark.parametrize("name", ["hi", "bin_sem2", "checksum"])
    def test_budget_edges(self, name):
        """Partial budgets, including mid-block stops, agree exactly."""
        program = PROGRAMS[name]()
        reference = Machine(program)
        reference.run(10_000_000)
        total = reference.cycle
        limits = {0, 1, 2, 3, total - 1, total, total + 1,
                  total // 2, total // 3, total // 7}
        for limit in sorted(x for x in limits if x >= 0):
            assert_identical(program, limit)

    def test_resume_from_partial_budget(self):
        """run() in small slices lands on mid-block pcs constantly."""
        program = PROGRAMS["bin_sem2"]()
        interp, jit = Machine(program), CompiledMachine(program)
        step = 7
        while not interp.halted:
            interp.run(interp.cycle + step)
            jit.run(jit.cycle + step)
            assert final_state(interp) == final_state(jit)
            step = (step * 3) % 11 + 1
        assert jit.halted


class TestInjectedRuns:
    """Random fault injections classify identically on both engines."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_memory_faults(self, name):
        program = PROGRAMS[name]()
        golden = Machine(program)
        golden.run(10_000_000)
        total, serial = golden.cycle, bytes(golden.serial)
        rng = random.Random(f"mem:{name}")
        for _ in range(40):
            slot = rng.randrange(1, total + 1)
            addr = rng.randrange(program.ram_size)
            bit = rng.randrange(8)

            def mutate(machine, slot=slot, addr=addr, bit=bit):
                machine.run_to_cycle(slot - 1)
                if not machine.halted:
                    machine.flip_bit(addr, bit)

            assert_identical(program, 4 * total + 100,
                             oracle=serial, mutate=mutate)

    @pytest.mark.parametrize("name", ["hi", "sync2", "memcopy"])
    def test_register_faults(self, name):
        program = PROGRAMS[name]()
        golden = Machine(program)
        golden.run(10_000_000)
        total, serial = golden.cycle, bytes(golden.serial)
        rng = random.Random(f"reg:{name}")
        for _ in range(40):
            slot = rng.randrange(1, total + 1)
            reg = rng.randrange(1, 16)
            bit = rng.randrange(32)

            def mutate(machine, slot=slot, reg=reg, bit=bit):
                machine.run_to_cycle(slot - 1)
                if not machine.halted:
                    machine.flip_register_bit(reg, bit)

            assert_identical(program, 4 * total + 100,
                             oracle=serial, mutate=mutate)


class TestTrapIdentity:
    """Each trap class carries the interpreter's exact diagnostics."""

    def trap_of(self, source, *, ram_size=16):
        program = assemble(source, name="trap", ram_size=ram_size)
        interp, jit = run_pair(program, 1000)
        assert interp == jit
        assert interp["trap"] is not None
        return interp["trap"]

    def test_unaligned_load(self):
        name, message, _, _ = self.trap_of("""
            li r1, 2
            lw r2, 0(r1)
            halt
        """)
        assert name == "AlignmentFault"
        assert "unaligned 4-byte load" in message

    def test_out_of_bounds_store(self):
        name, message, _, _ = self.trap_of("""
            li r1, 64
            sw r1, 0(r1)
            halt
        """)
        assert name == "MemoryFault"
        assert "outside RAM" in message

    def test_negative_address(self):
        name, _, _, _ = self.trap_of("""
            li r1, 4
            sub r1, r0, r1
            lw r2, 0(r1)
            halt
        """)
        # -4 is 4-aligned, so this is a bounds fault, not alignment.
        assert name == "MemoryFault"

    def test_division_by_zero(self):
        name, message, _, _ = self.trap_of("""
            li r1, 7
            divu r2, r1, r0
            halt
        """)
        assert name == "ArithmeticTrap"
        assert "division by zero" in message

    def test_illegal_pc_via_jalr(self):
        name, message, _, _ = self.trap_of("""
            li r1, 4000
            jalr r2, 0(r1)
        """)
        assert name == "IllegalPC"
        assert "outside ROM" in message

    def test_trap_leaves_identical_machine_state(self):
        """pc/cycle after the trap (halted, un-incremented) agree."""
        program = assemble("""
            li r1, 3
            lh r2, 0(r1)
            halt
        """, name="trap-state", ram_size=8)
        interp, jit = run_pair(program, 1000)
        assert interp["trap"] == jit["trap"]
        assert interp["pc"] == jit["pc"]
        assert interp["cycle"] == jit["cycle"]
        assert interp["halted"] and jit["halted"]


class TestSnapshotInterop:
    """Snapshots are engine-independent: cross-restore round-trips."""

    def test_interp_snapshot_into_jit(self):
        program = PROGRAMS["bin_sem2"]()
        interp = Machine(program)
        interp.run(50)
        state = interp.snapshot()
        jit = CompiledMachine(program)
        jit.restore(state)
        assert final_state(jit) == final_state(interp)
        interp.run(10_000_000)
        jit.run(10_000_000)
        assert final_state(interp) == final_state(jit)

    def test_jit_snapshot_into_interp(self):
        program = PROGRAMS["checksum"]()
        jit = CompiledMachine(program)
        jit.run(33)
        interp = Machine(program)
        interp.restore(jit.snapshot())
        interp.run(10_000_000)
        jit.run(10_000_000)
        assert final_state(interp) == final_state(jit)

    def test_restore_rebuilds_ram_views(self):
        """restore() swaps the RAM buffer; the JIT's views must follow."""
        program = PROGRAMS["memcopy"]()
        jit = CompiledMachine(program)
        jit.run(10)
        state = jit.snapshot()
        jit.run(10_000_000)
        jit.restore(state)
        jit.flip_bit(0, 0)
        ref = Machine(program)
        ref.restore(state)
        ref.flip_bit(0, 0)
        jit.run(10_000_000)
        ref.run(10_000_000)
        assert final_state(jit) == final_state(ref)

    def test_reset_rebuilds_ram_views(self):
        program = PROGRAMS["hi"]()
        jit = CompiledMachine(program)
        jit.run(10_000_000)
        jit.reset()
        ref = Machine(program)
        jit.run(10_000_000)
        ref.run(10_000_000)
        assert final_state(jit) == final_state(ref)


class TestOracleDivergence:
    def test_divergent_output_stops_both_engines(self):
        program = PROGRAMS["hi"]()
        golden = Machine(program)
        golden.run(10_000)
        serial = bytes(golden.serial)
        assert serial  # hi must print something

        def mutate(machine):
            # Corrupt the byte the first OUT will read.
            machine.flip_register_bit(1, 0) \
                if machine.regs[1] else machine.flip_bit(0, 0)

        interp, jit = run_pair(program, 10_000, oracle=serial,
                               mutate=mutate)
        assert interp == jit

    def test_tracing_falls_back_to_interpreter(self):
        """A tracer disables the JIT path but not correctness."""
        from repro.isa import MemoryTrace

        program = PROGRAMS["memcopy"]()
        interp = Machine(program, tracer=MemoryTrace())
        jit = CompiledMachine(program, tracer=MemoryTrace())
        interp.run(10_000_000)
        jit.run(10_000_000)
        assert final_state(interp) == final_state(jit)
        assert interp.tracer.events == jit.tracer.events


class TestEngineRegistry:
    def test_get_engine_by_name(self):
        assert get_engine("interp") is INTERP
        assert get_engine("compiled") is COMPILED
        assert get_engine("batch") is BATCH

    def test_default_is_compiled(self):
        assert get_engine(None) is COMPILED

    def test_instance_passthrough(self):
        assert get_engine(INTERP) is INTERP

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            get_engine("turbo")

    def test_registry_names_match(self):
        for name, engine in ENGINES.items():
            assert engine.name == name

    def test_create_machine_types(self):
        program = micro.counter(1)
        assert type(INTERP.create_machine(program)) is Machine
        assert isinstance(COMPILED.create_machine(program),
                          CompiledMachine)
        assert BATCH.batch and not COMPILED.batch

    def test_compile_program_covers_rom(self):
        code = compile_program(PROGRAMS["sync2"]())
        if code is not None:  # None only on big-endian hosts
            assert 0 in code.leaders
            assert "def _jit(M, limit):" in code.source
