"""Tests for the single-threaded micro-benchmarks."""

import pytest

from repro.campaign import record_golden
from repro.programs import micro


class TestCounter:
    def test_counts_to_n(self):
        golden = record_golden(micro.counter(5))
        assert golden.output == bytes([5])

    def test_bounds(self):
        with pytest.raises(ValueError):
            micro.counter(0)
        with pytest.raises(ValueError):
            micro.counter(256)


class TestMemcopy:
    def test_copies_alphabet_prefix(self):
        golden = record_golden(micro.memcopy(5))
        assert golden.output == b"abcde"

    def test_bounds(self):
        with pytest.raises(ValueError):
            micro.memcopy(0)
        with pytest.raises(ValueError):
            micro.memcopy(27)


class TestChecksumLoop:
    def test_prints_low_byte_of_sum(self):
        golden = record_golden(micro.checksum_loop(4))
        expected = sum((i * 37 + 11) & 0xFF for i in range(4)) & 0xFF
        assert golden.output == bytes([expected])

    def test_bounds(self):
        with pytest.raises(ValueError):
            micro.checksum_loop(17)


class TestStackEcho:
    def test_pops_in_reverse(self):
        golden = record_golden(micro.stack_echo(3))
        assert golden.output == bytes([ord("C"), ord("B"), ord("A")])

    def test_bounds(self):
        with pytest.raises(ValueError):
            micro.stack_echo(0)
