"""Tests for the bin_sem2/sync2 kernel-test analogs.

Full campaigns on the default sizes are benchmark-harness material; the
tests here use reduced sizes to stay fast while checking the same
structure.
"""

import pytest

from repro.campaign import record_golden
from repro.programs import bin_sem2, sync2
from repro.programs.registry import (
    all_programs,
    hi_variants,
    micro_programs,
    paper_pairs,
)


class TestBinSem2:
    def test_golden_output(self):
        golden = record_golden(bin_sem2.baseline(rounds=2))
        assert golden.output == b"kk!"

    def test_hardened_same_output(self):
        base = record_golden(bin_sem2.baseline(rounds=2))
        hard = record_golden(bin_sem2.hardened(rounds=2))
        assert hard.output == base.output

    def test_hardened_overhead(self):
        base = bin_sem2.baseline(rounds=2)
        hard = bin_sem2.hardened(rounds=2)
        assert hard.ram_size > base.ram_size
        assert record_golden(hard).cycles > record_golden(base).cycles

    def test_rounds_scale_runtime(self):
        short = record_golden(bin_sem2.baseline(rounds=1))
        long = record_golden(bin_sem2.baseline(rounds=4))
        assert long.cycles > short.cycles
        assert long.output == b"kkkk!"

    def test_zero_rounds_rejected(self):
        with pytest.raises(ValueError):
            bin_sem2.baseline(rounds=0)


class TestSync2:
    def test_golden_output(self):
        golden = record_golden(sync2.baseline(items=3))
        assert golden.output == b"p.p.p.!"

    def test_hardened_same_output(self):
        base = record_golden(sync2.baseline(items=3))
        hard = record_golden(sync2.hardened(items=3))
        assert hard.output == base.output

    def test_hardened_runtime_blowup(self):
        """The paper's Figure 2(g) shape: sync2's hardened runtime is
        several times the baseline's."""
        base = record_golden(sync2.baseline(items=3))
        hard = record_golden(sync2.hardened(items=3))
        assert hard.cycles > 2.5 * base.cycles

    def test_expected_accumulator(self):
        assert sync2.expected_accumulator(3) == 7 * 6
        assert sync2.expected_accumulator(10) == 7 * 55

    def test_zero_items_rejected(self):
        with pytest.raises(ValueError):
            sync2.baseline(items=0)


class TestRegistry:
    def test_paper_pairs_cover_both_benchmarks(self):
        pairs = paper_pairs()
        assert [p.name for p in pairs] == ["bin_sem2", "sync2"]
        for pair in pairs:
            assert pair.baseline().name == pair.name
            assert "sumdmr" in pair.hardened().name

    def test_all_programs_assemble_and_have_unique_names(self):
        programs = all_programs()
        assert len(programs) >= 10
        names = [thunk().name for thunk in programs.values()]
        assert len(set(names)) == len(names)

    def test_hi_variants_present(self):
        assert set(hi_variants()) == {
            "hi", "hi-dft4", "hi-dftprime4", "hi-mem2"}

    def test_micro_programs_run_clean(self):
        for name, thunk in micro_programs().items():
            golden = record_golden(thunk())
            assert golden.cycles > 0, name
            assert golden.output, name
