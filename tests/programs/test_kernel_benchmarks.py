"""Tests for the kernel workloads: the paper's bin_sem2/sync2 analogs
and the kernel benchmark suite (chain/msgq/prio).

Full campaigns on the default sizes are benchmark-harness material; the
tests here use reduced sizes to stay fast while checking the same
structure.
"""

import pytest

from repro.campaign import record_golden
from repro.faultspace import MEMORY
from repro.programs import bin_sem2, chain, msgq, prio, sync2
from repro.programs.registry import (
    all_programs,
    hi_variants,
    kernel_benchmarks,
    micro_programs,
    paper_pairs,
)


class TestBinSem2:
    def test_golden_output(self):
        golden = record_golden(bin_sem2.baseline(rounds=2))
        assert golden.output == b"kk!"

    def test_hardened_same_output(self):
        base = record_golden(bin_sem2.baseline(rounds=2))
        hard = record_golden(bin_sem2.hardened(rounds=2))
        assert hard.output == base.output

    def test_hardened_overhead(self):
        base = bin_sem2.baseline(rounds=2)
        hard = bin_sem2.hardened(rounds=2)
        assert hard.ram_size > base.ram_size
        assert record_golden(hard).cycles > record_golden(base).cycles

    def test_rounds_scale_runtime(self):
        short = record_golden(bin_sem2.baseline(rounds=1))
        long = record_golden(bin_sem2.baseline(rounds=4))
        assert long.cycles > short.cycles
        assert long.output == b"kkkk!"

    def test_zero_rounds_rejected(self):
        with pytest.raises(ValueError):
            bin_sem2.baseline(rounds=0)


class TestSync2:
    def test_golden_output(self):
        golden = record_golden(sync2.baseline(items=3))
        assert golden.output == b"p.p.p.!"

    def test_hardened_same_output(self):
        base = record_golden(sync2.baseline(items=3))
        hard = record_golden(sync2.hardened(items=3))
        assert hard.output == base.output

    def test_hardened_runtime_blowup(self):
        """The paper's Figure 2(g) shape: sync2's hardened runtime is
        several times the baseline's."""
        base = record_golden(sync2.baseline(items=3))
        hard = record_golden(sync2.hardened(items=3))
        assert hard.cycles > 2.5 * base.cycles

    def test_expected_accumulator(self):
        assert sync2.expected_accumulator(3) == 7 * 6
        assert sync2.expected_accumulator(10) == 7 * 55

    def test_zero_items_rejected(self):
        with pytest.raises(ValueError):
            sync2.baseline(items=0)


class TestChain:
    def test_golden_output(self):
        golden = record_golden(chain.baseline(items=3))
        assert golden.output == b"p.p.p.!"

    def test_hardened_same_output_with_overhead(self):
        base = record_golden(chain.baseline(items=3))
        hard = record_golden(chain.hardened(items=3))
        assert hard.output == base.output
        assert hard.cycles > base.cycles

    def test_transform_applied_stage_by_stage(self):
        assert chain.transform(5) == 13
        assert chain.expected_accumulator(2) \
            == chain.transform(5) + chain.transform(10)

    def test_items_scale_runtime(self):
        short = record_golden(chain.baseline(items=1))
        long = record_golden(chain.baseline(items=4))
        assert long.cycles > short.cycles
        assert long.output == b"p.p.p.p.!"

    def test_zero_items_rejected(self):
        with pytest.raises(ValueError):
            chain.baseline(items=0)


class TestMsgq:
    def test_golden_output_wraps_past_capacity(self):
        """items > capacity forces both the queue-full and queue-empty
        blocking paths and at least one head/tail wrap-around."""
        golden = record_golden(msgq.baseline(items=5, capacity=2))
        assert golden.output == b"pp..pp..p.!"

    def test_hardened_same_output_with_overhead(self):
        base = record_golden(msgq.baseline(items=4, capacity=2))
        hard = record_golden(msgq.hardened(items=4, capacity=2))
        assert hard.output == base.output
        assert hard.cycles > base.cycles

    def test_degenerate_parameters_rejected(self):
        with pytest.raises(ValueError):
            msgq.baseline(items=0)
        with pytest.raises(ValueError):
            msgq.baseline(items=3, capacity=0)

    def test_expected_accumulator(self):
        assert msgq.expected_accumulator(3) == 6 * 6
        assert msgq.expected_accumulator(7) == 6 * 28


class TestPrio:
    def test_golden_output_orders_the_inversion(self):
        """Low acquires first, high blocks on the held mutex, medium
        runs its unrelated work, then low releases and high finishes —
        the classic priority-inversion interleaving."""
        golden = record_golden(prio.baseline())
        assert golden.output == b"LhMMMlH!"

    def test_medium_work_scales_the_inversion_window(self):
        """A longer hold gives medium room for more work units, all of
        it inside the window where high is blocked by low."""
        golden = record_golden(prio.baseline(hold_yields=6, m_work=5))
        assert golden.output == b"LhMMMMMlH!"

    def test_hardened_same_output_with_overhead(self):
        base = record_golden(prio.baseline())
        hard = record_golden(prio.hardened())
        assert hard.output == base.output
        assert hard.cycles > base.cycles


class TestKernelBenchmarkRegistry:
    def test_suite_members_and_categories(self):
        suite = kernel_benchmarks()
        assert [(b.name, b.category) for b in suite] == [
            ("chain", "pipeline"), ("msgq", "queue"), ("prio", "mutex")]

    def test_expected_fault_space_pins_default_geometry(self):
        """The registry's pinned Δt × Δm × 8 must match the measured
        baseline — any drift in a benchmark's runtime or footprint
        fails here before it can silently skew weighted comparisons."""
        for bench in kernel_benchmarks():
            golden = record_golden(bench.baseline())
            assert MEMORY.fault_space(golden).size \
                == bench.expected_fault_space, bench.name

    def test_hardened_variants_registered_in_all_programs(self):
        programs = all_programs()
        for bench in kernel_benchmarks():
            assert bench.name in programs
            assert f"{bench.name}-sumdmr" in programs
            assert programs[f"{bench.name}-sumdmr"]().name \
                != programs[bench.name]().name


class TestRegistry:
    def test_paper_pairs_cover_both_benchmarks(self):
        pairs = paper_pairs()
        assert [p.name for p in pairs] == ["bin_sem2", "sync2"]
        for pair in pairs:
            assert pair.baseline().name == pair.name
            assert "sumdmr" in pair.hardened().name

    def test_all_programs_assemble_and_have_unique_names(self):
        programs = all_programs()
        assert len(programs) >= 10
        names = [thunk().name for thunk in programs.values()]
        assert len(set(names)) == len(names)

    def test_hi_variants_present(self):
        assert set(hi_variants()) == {
            "hi", "hi-dft4", "hi-dftprime4", "hi-mem2"}

    def test_micro_programs_run_clean(self):
        for name, thunk in micro_programs().items():
            golden = record_golden(thunk())
            assert golden.cycles > 0, name
            assert golden.output, name
