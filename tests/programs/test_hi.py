"""Tests for the "Hi" benchmark: the paper's exact Section IV numbers."""

import pytest

from repro.campaign import record_golden, run_full_scan
from repro.metrics import weighted_coverage, weighted_failure_count
from repro.programs import hi


class TestBaseline:
    def test_eight_instructions_eight_cycles(self):
        program = hi.baseline()
        assert program.rom_size == 8
        golden = record_golden(program)
        assert golden.cycles == 8
        assert golden.output == b"Hi"

    def test_fault_space_is_128(self):
        golden = record_golden(hi.baseline())
        assert golden.fault_space.size == 128

    def test_paper_coverage_62_5(self):
        scan = run_full_scan(record_golden(hi.baseline()))
        assert weighted_coverage(scan) == pytest.approx(0.625)

    def test_paper_failure_count_48(self):
        scan = run_full_scan(record_golden(hi.baseline()))
        assert weighted_failure_count(scan).total == 48


class TestDftVariants:
    def test_dft_coverage_75(self):
        scan = run_full_scan(record_golden(hi.dft_variant(4)))
        assert weighted_coverage(scan) == pytest.approx(0.75)

    def test_dft_failure_count_unchanged(self):
        scan = run_full_scan(record_golden(hi.dft_variant(4)))
        assert weighted_failure_count(scan).total == 48

    def test_more_nops_more_coverage(self):
        small = run_full_scan(record_golden(hi.dft_variant(4)))
        large = run_full_scan(record_golden(hi.dft_variant(24)))
        assert weighted_coverage(large) > weighted_coverage(small)
        assert weighted_coverage(large) < 1.0
        assert weighted_failure_count(large).total == 48

    def test_dft_prime_same_coverage_as_dft(self):
        dft = run_full_scan(record_golden(hi.dft_variant(4)))
        prime = run_full_scan(record_golden(hi.dft_prime_variant(4)))
        assert weighted_coverage(prime) == pytest.approx(
            weighted_coverage(dft))
        assert weighted_failure_count(prime).total == 48

    def test_memory_dilution_also_inflates_coverage(self):
        base = run_full_scan(record_golden(hi.baseline()))
        diluted = run_full_scan(record_golden(
            hi.memory_diluted_variant(2)))
        assert weighted_coverage(diluted) > weighted_coverage(base)
        assert weighted_failure_count(diluted).total == 48

    def test_memory_dilution_validates_input(self):
        with pytest.raises(ValueError):
            hi.memory_diluted_variant(-1)
