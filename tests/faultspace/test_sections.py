"""Unit tests for the section model (faultspace/sections.py).

The section map is the foundation of the compositional result store:
these tests pin the partition invariants (windows tile the campaign,
every coordinate has exactly one owner), the fingerprint contract
(stable across rebuilds, engine-independent inputs, sensitive to code,
domain and executor parameters), and the per-section Pitfall-1
weighting (section counters aggregate to the whole-program weighted
counts exactly).
"""

import pytest

from repro.campaign import record_golden, run_full_scan
from repro.faultspace import (
    build_section_map,
    aggregate_section_counts,
    get_domain,
    section_weighted_counts,
)
from repro.faultspace.sections import canonical_params
from repro.isa.assembler import assemble
from repro.programs import guarded, micro


@pytest.fixture(scope="module")
def counter_golden():
    return record_golden(micro.counter(3))


def _swap_pair():
    """Two programs differing only by a commutative operand swap in the
    entry block: identical machine state at every cycle, different code
    bytes in (and only in) the first section."""
    template = """\
        .data
count:  .word 0
        .text
start:  add  r4, {a}, {b}
loop:   lw   r1, count(zero)
        addi r1, r1, 1
        sw   r1, count(zero)
        addi r4, r4, 1
        slti r2, r4, 3
        bnez r2, loop
        lw   r1, count(zero)
        out  r1
        halt
"""
    prog_a = assemble(template.format(a="r5", b="r6"), name="swap-a",
                      ram_size=4)
    prog_b = assemble(template.format(a="r6", b="r5"), name="swap-b",
                      ram_size=4)
    return record_golden(prog_a), record_golden(prog_b)


class TestPartition:
    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_windows_tile_the_campaign(self, counter_golden, domain):
        section_map = build_section_map(counter_golden, domain)
        expected = 1
        for section in section_map:
            assert section.first_slot == expected
            expected = section.last_slot + 1
        assert expected == counter_golden.cycles + 1

    def test_owner_is_total_and_consistent(self, counter_golden):
        section_map = build_section_map(counter_golden)
        for slot in range(1, counter_golden.cycles + 1):
            assert section_map.owner(slot).covers(slot)
        with pytest.raises(IndexError):
            section_map.owner(0)
        with pytest.raises(IndexError):
            section_map.owner(counter_golden.cycles + 1)

    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_every_coordinate_has_an_owner(self, counter_golden, domain):
        domain = get_domain(domain)
        section_map = build_section_map(counter_golden, domain)
        for coord in domain.fault_space(counter_golden) \
                .iter_coordinates():
            assert section_map.owner_of(coord).covers(coord.slot)

    def test_loop_iterations_stay_in_one_section(self, counter_golden):
        """First-visit windowing: re-executing a block opens no new
        section, so the map has at most one section per executed block."""
        section_map = build_section_map(counter_golden)
        assert len(section_map) < counter_golden.cycles


class TestFingerprints:
    def test_fingerprints_are_stable_across_rebuilds(self,
                                                     counter_golden):
        first = build_section_map(counter_golden).fingerprints()
        second = build_section_map(counter_golden).fingerprints()
        assert first == second

    def test_domain_and_params_enter_the_fingerprint(self,
                                                     counter_golden):
        base = build_section_map(counter_golden, "memory")
        other_domain = build_section_map(counter_golden, "register")
        other_params = build_section_map(
            counter_golden, "memory", {"timeout_cycles": 999})
        assert not set(base.fingerprints()) \
            & set(other_domain.fingerprints())
        assert not set(base.fingerprints()) \
            & set(other_params.fingerprints())

    def test_different_programs_share_no_fingerprint(self):
        maps = [build_section_map(record_golden(program))
                for program in guarded.variants().values()]
        seen: set[str] = set()
        for section_map in maps:
            fingerprints = set(section_map.fingerprints())
            assert not fingerprints & seen
            seen |= fingerprints

    def test_entry_block_mutation_preserves_later_sections(self):
        """The soundness story in one example: a commutative operand
        swap in the entry block changes only the first section's
        fingerprint — later sections' forward closures exclude the
        entry block and their entry states are bit-identical."""
        golden_a, golden_b = _swap_pair()
        map_a = build_section_map(golden_a)
        map_b = build_section_map(golden_b)
        assert [s.first_slot for s in map_a] \
            == [s.first_slot for s in map_b]
        fps_a, fps_b = map_a.fingerprints(), map_b.fingerprints()
        assert fps_a[0] != fps_b[0]
        assert fps_a[1:] == fps_b[1:]

    def test_canonical_params_is_order_insensitive(self):
        assert canonical_params({"b": 2, "a": 1}) \
            == canonical_params({"a": 1, "b": 2})
        assert canonical_params(None) == canonical_params({})


class TestSectionWeighting:
    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_section_counts_aggregate_to_whole_program(self, domain):
        """Per-section Pitfall-1 weighting loses nothing: summing the
        section counters reproduces the campaign's weighted counts
        bit for bit."""
        golden = record_golden(micro.counter(3))
        scan = run_full_scan(golden, domain=domain)
        section_map = build_section_map(golden, domain)
        per_section = scan.weighted_counts_by_section(section_map)
        assert aggregate_section_counts(per_section) \
            == scan.weighted_counts()

    def test_section_counts_cover_each_sections_space(self):
        golden = record_golden(micro.counter(3))
        scan = run_full_scan(golden)
        section_map = build_section_map(golden)
        domain = get_domain("memory")
        space = domain.fault_space(golden)
        per_slot = space.size // golden.cycles
        per_section = scan.weighted_counts_by_section(section_map)
        for section in section_map:
            assert sum(per_section[section.index].values()) \
                == section.slots * per_slot

    def test_direct_call_matches_result_method(self):
        golden = record_golden(micro.counter(3))
        scan = run_full_scan(golden)
        domain = get_domain("memory")
        section_map = build_section_map(golden, domain)
        outcomes = {domain.class_key(interval): rows
                    for interval, rows in scan.class_records()}
        direct = section_weighted_counts(
            section_map, scan.partition.live_classes(), outcomes,
            domain=domain, space=domain.fault_space(golden))
        assert direct == scan.weighted_counts_by_section(section_map)
