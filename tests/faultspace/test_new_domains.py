"""Ground-truth parity grid for the new fault-model family.

For every new domain (burst2/burst4 multi-bit, stuck-at-until-write,
pc) and each of two programs, the exhaustive brute-force scan over the
*raw* fault space is the ground truth; the pruned full scan must agree
coordinate for coordinate and in its weighted totals.  This is the
Pitfall-1 soundness proof, executed: equivalence-class pruning may
never change a single outcome, only skip redundant executions.
"""

import pytest

from repro.campaign import (
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.faultspace import (
    BURST2,
    BURST4,
    DOMAINS,
    PC,
    STUCK,
    BurstFaultSpace,
    PCFaultCoordinate,
    PCFaultSpace,
    StuckAtCoordinate,
    StuckAtFaultSpace,
    burst_positions,
    get_domain,
)
from repro.programs import hi, micro

NEW_DOMAINS = ("burst2", "burst4", "stuck", "pc")
PROGRAMS = {
    "hi": hi.baseline,
    "counter": lambda: micro.counter(2),
}


@pytest.fixture(scope="module")
def goldens():
    return {name: record_golden(thunk())
            for name, thunk in PROGRAMS.items()}


class TestBruteForceParity:
    """Exhaustive ground truth vs. pruned scan, per domain × program."""

    @pytest.mark.parametrize("domain", NEW_DOMAINS)
    @pytest.mark.parametrize("program", sorted(PROGRAMS))
    def test_pruned_scan_matches_ground_truth(self, goldens, domain,
                                              program):
        golden = goldens[program]
        brute = run_brute_force(golden, domain=domain)
        scan = run_full_scan(golden, domain=domain)
        space = get_domain(domain).fault_space(golden)
        assert len(brute.outcomes) == space.size
        for coord, outcome in brute.outcomes.items():
            assert scan.outcome_of(coord) == outcome, coord

    @pytest.mark.parametrize("domain", NEW_DOMAINS)
    @pytest.mark.parametrize("program", sorted(PROGRAMS))
    def test_weighted_counts_match_ground_truth(self, goldens, domain,
                                                program):
        golden = goldens[program]
        brute = run_brute_force(golden, domain=domain)
        scan = run_full_scan(golden, domain=domain)
        assert brute.counts() == scan.weighted_counts()
        assert sum(scan.weighted_counts().values()) \
            == scan.fault_space_size

    @pytest.mark.parametrize("domain", NEW_DOMAINS)
    def test_sampling_outcomes_match_ground_truth(self, goldens, domain):
        golden = goldens["counter"]
        brute = run_brute_force(golden, domain=domain)
        result = run_sampling(golden, 60, seed=11, domain=domain)
        for sample, outcome in result.samples:
            assert brute.outcomes[sample.coordinate] == outcome, sample


class TestBurstGeometry:
    def test_burst_positions(self):
        assert burst_positions(2) == 7
        assert burst_positions(4) == 5
        assert burst_positions(8) == 1
        with pytest.raises(ValueError):
            burst_positions(1)
        with pytest.raises(ValueError):
            burst_positions(9)

    def test_space_size_scales_with_positions(self):
        base = BurstFaultSpace(cycles=5, ram_bytes=3, width=2)
        assert base.size == 5 * 3 * 7
        wide = BurstFaultSpace(cycles=5, ram_bytes=3, width=4)
        assert wide.size == 5 * 3 * 5

    def test_coordinate_roundtrip(self):
        space = BurstFaultSpace(cycles=4, ram_bytes=2, width=2)
        for index in range(space.size):
            coord = space.coordinate(index)
            assert space.contains(coord)
            assert space.index(coord) == index
            assert 0 <= coord.bit <= 8 - 2

    def test_inject_flips_adjacent_bits(self, goldens):
        golden = goldens["counter"]
        from repro.isa.cpu import Machine

        machine = Machine(golden.program)
        machine.run_to_cycle(1)
        before = bytes(machine.ram)
        coord = BURST2.fault_space(golden).coordinate(0)
        BURST2.inject(machine, coord)
        after = bytes(machine.ram)
        diff = [(i, a ^ b) for i, (a, b) in enumerate(zip(before, after))
                if a != b]
        assert len(diff) == 1
        addr, mask = diff[0]
        assert addr == coord.addr
        assert mask == 0b11 << coord.bit

    def test_partition_weights_cover_space(self, goldens):
        for domain in (BURST2, BURST4):
            partition = domain.build_partition(goldens["counter"])
            space = domain.fault_space(goldens["counter"])
            assert partition.total_weight == space.size


class TestStuckAtGeometry:
    def test_space_has_16_experiments_per_byte(self):
        space = StuckAtFaultSpace(cycles=3, ram_bytes=2)
        assert space.size == 3 * 2 * 16

    def test_coordinate_roundtrip_and_value_split(self):
        space = StuckAtFaultSpace(cycles=2, ram_bytes=1)
        for index in range(space.size):
            coord = space.coordinate(index)
            assert space.index(coord) == index
            assert coord.bitpos == coord.bit & 7
            assert coord.value == coord.bit >> 3
            assert coord.value in (0, 1)

    def test_coordinate_validates_bit(self):
        with pytest.raises(ValueError):
            StuckAtCoordinate(slot=1, addr=0, bit=16)

    def test_partition_weights_cover_space(self, goldens):
        partition = STUCK.build_partition(goldens["counter"])
        space = STUCK.fault_space(goldens["counter"])
        assert partition.total_weight == space.size

    def test_domain_flags(self):
        assert STUCK.persistent
        assert not STUCK.involutive
        assert STUCK.batchable


class TestPCGeometry:
    def test_space_is_32_bits_per_slot(self):
        space = PCFaultSpace(cycles=3)
        assert space.size == 3 * 32
        for index in range(space.size):
            coord = space.coordinate(index)
            assert space.index(coord) == index

    def test_partition_classes_cover_space_exactly(self, goldens):
        golden = goldens["counter"]
        partition = PC.build_partition(golden)
        space = PC.fault_space(golden)
        assert partition.total_weight == space.size
        assert partition.known_no_effect_weight == 0
        # Every class has exactly one representative experiment.
        for interval in partition.live_classes():
            assert len(interval.experiments()) == 1
            assert PC.experiment_count(interval) == 1
            weights = PC.experiment_slot_weights(interval)
            assert weights == (interval.weight_bits,)

    def test_grouped_illegal_class_members_share_outcome(self, goldens):
        """The grouped class's soundness: every member of a slot's
        illegal-pc class must brute-force to the same outcome."""
        golden = goldens["counter"]
        brute = run_brute_force(golden, domain="pc")
        partition = PC.build_partition(golden)
        for interval in partition.live_classes():
            outcomes = {brute.outcomes[PCFaultCoordinate(interval.slot, b)]
                        for b in interval.members}
            assert len(outcomes) == 1, interval

    def test_domain_flags(self):
        assert not PC.batchable
        assert PC.control_hazard
        assert PC.involutive


class TestDomainRegistryHooks:
    """The experiment-hook contract every registered domain must meet."""

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_slot_weights_sum_to_interval_weight(self, goldens, name):
        domain = DOMAINS[name]
        partition = domain.build_partition(goldens["counter"])
        for interval in partition.live_classes():
            weights = domain.experiment_slot_weights(interval)
            assert len(weights) == domain.experiment_count(interval)
            assert interval.length * sum(weights) == interval.weight_bits

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_experiment_index_roundtrip(self, goldens, name):
        domain = DOMAINS[name]
        partition = domain.build_partition(goldens["counter"])
        for interval in partition.live_classes():
            for idx, coord in enumerate(interval.experiments()):
                assert domain.experiment_index(interval, coord) == idx
                rebuilt = domain.experiment_coordinate(interval, idx)
                assert rebuilt == coord

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_interval_coordinate_enumerates_whole_weight(self, goldens,
                                                         name):
        domain = DOMAINS[name]
        partition = domain.build_partition(goldens["counter"])
        for interval in partition.live_classes()[:6]:
            seen = set()
            for offset in range(interval.weight_bits):
                coord = domain.interval_coordinate(interval, offset)
                assert interval.first_slot <= coord.slot \
                    <= interval.last_slot
                seen.add((coord.slot, coord.bit))
            assert len(seen) == interval.weight_bits
