"""Tests for the fault-space samplers, including the Pitfall 2 bias."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.faultspace import (
    BiasedClassSampler,
    DefUsePartition,
    FaultSpace,
    LIVE,
    LiveOnlySampler,
    UniformSampler,
)
from repro.isa import MemoryTrace, READ, WRITE


def make_partition(cycles, ram_bytes, events):
    trace = MemoryTrace()
    for addr, evs in events.items():
        for slot, kind in evs:
            trace.record(slot, addr, 1, kind)
    trace.finish(cycles)
    return DefUsePartition.from_trace(
        trace, FaultSpace(cycles=cycles, ram_bytes=ram_bytes))


class TestUniformSampler:
    def test_draw_is_deterministic_per_seed(self):
        space = FaultSpace(cycles=10, ram_bytes=4)
        a = UniformSampler(space, seed=7).draw(50)
        b = UniformSampler(space, seed=7).draw(50)
        assert a == b

    def test_different_seeds_differ(self):
        space = FaultSpace(cycles=10, ram_bytes=4)
        assert (UniformSampler(space, seed=1).draw(50)
                != UniformSampler(space, seed=2).draw(50))

    def test_draws_stay_inside_space(self):
        space = FaultSpace(cycles=5, ram_bytes=2)
        for coord in UniformSampler(space, seed=3).draw(200):
            assert space.contains(coord)

    def test_negative_count_rejected(self):
        space = FaultSpace(cycles=5, ram_bytes=2)
        with pytest.raises(ValueError):
            UniformSampler(space).draw(-1)

    def test_classified_samples_carry_their_class(self):
        partition = make_partition(10, 1, {0: [(3, WRITE), (8, READ)]})
        sampler = UniformSampler(partition.fault_space, seed=0)
        for sample in sampler.draw_classified(100, partition):
            interval = partition.locate(sample.coordinate)
            assert sample.addr == interval.addr
            assert sample.class_first_slot == interval.first_slot
            assert sample.class_kind == interval.kind

    def test_uniformity_over_small_space(self):
        # Chi-square-ish sanity: every coordinate of a tiny space should
        # be hit with roughly equal frequency.
        space = FaultSpace(cycles=2, ram_bytes=1)  # 16 coordinates
        draws = UniformSampler(space, seed=11).draw(3200)
        counts = collections.Counter(draws)
        assert len(counts) == 16
        # Expectation 200 per coordinate; allow generous slack.
        assert all(120 <= c <= 280 for c in counts.values())


class TestLiveOnlySampler:
    def test_population_is_live_weight(self):
        partition = make_partition(10, 2, {0: [(3, WRITE), (8, READ)]})
        sampler = LiveOnlySampler(partition, seed=0)
        assert sampler.population == partition.live_weight

    def test_samples_fall_only_in_live_classes(self):
        partition = make_partition(
            12, 2, {0: [(4, WRITE), (11, READ)], 1: [(2, READ)]})
        sampler = LiveOnlySampler(partition, seed=5)
        for sample in sampler.draw_classified(200):
            assert sample.class_kind == LIVE
            assert partition.locate(sample.coordinate).kind == LIVE

    def test_empty_live_space_rejected(self):
        partition = make_partition(4, 1, {0: [(2, WRITE)]})
        sampler = LiveOnlySampler(partition, seed=0)
        assert sampler.population == 0
        with pytest.raises(ValueError, match="no live"):
            sampler.draw_classified(1)

    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=25)
    def test_live_draws_cover_whole_live_intervals(self, seed):
        partition = make_partition(
            9, 1, {0: [(2, READ), (7, READ)]})
        sampler = LiveOnlySampler(partition, seed=seed)
        for sample in sampler.draw_classified(20):
            interval = partition.locate(sample.coordinate)
            assert interval.covers(sample.coordinate.slot)


class TestBiasedClassSampler:
    def test_rejects_partition_without_live_classes(self):
        partition = make_partition(4, 1, {0: [(2, WRITE)]})
        with pytest.raises(ValueError):
            BiasedClassSampler(partition)

    def test_injects_only_at_representative_slots(self):
        partition = make_partition(
            20, 1, {0: [(2, READ), (19, READ)]})
        sampler = BiasedClassSampler(partition, seed=1)
        slots = {s.coordinate.slot for s in sampler.draw_classified(100)}
        assert slots <= {2, 19}

    def test_bias_ignores_class_sizes(self):
        # Two live classes with wildly different sizes (2 vs 18 slots):
        # the biased sampler picks each class ~50/50, the raw-uniform
        # sampler proportionally to size.
        partition = make_partition(
            20, 1, {0: [(2, READ), (19, READ)]})
        biased = BiasedClassSampler(partition, seed=3)
        counts = collections.Counter(
            s.class_first_slot for s in biased.draw_classified(2000))
        small, large = counts[1], counts[3]
        assert abs(small - large) < 0.2 * 2000  # ~50/50

        uniform = UniformSampler(partition.fault_space, seed=3)
        u_counts = collections.Counter(
            s.class_first_slot
            for s in uniform.draw_classified(2000, partition)
            if s.class_kind == LIVE)
        # Raw-uniform: class starting at slot 3 (17 slots) dominates the
        # class starting at slot 1 (2 slots) by roughly its size ratio.
        assert u_counts[3] > 4 * u_counts[1]


class TestSeededSamplerState:
    """RNG-position journaling: the hook behind exact sampling resume."""

    def _partition(self):
        return make_partition(10, 2, {0: [(2, READ), (7, READ)],
                                      1: [(4, WRITE), (9, READ)]})

    def test_state_round_trips_through_json(self):
        partition = self._partition()
        sampler = UniformSampler(partition.fault_space, seed=11)
        sampler.draw_classified(7, partition)
        state = sampler.rng_state()
        clone = UniformSampler(partition.fault_space, seed=0)
        clone.set_rng_state(state)
        assert clone.rng_state() == state
        assert clone.draw_classified(20, partition) \
            == sampler.draw_classified(20, partition)

    def test_state_is_a_position_not_a_seed(self):
        """Equal seeds diverge after different draw counts — the state
        captures *where* in the stream the sampler is."""
        partition = self._partition()
        a = UniformSampler(partition.fault_space, seed=5)
        b = UniformSampler(partition.fault_space, seed=5)
        assert a.rng_state() == b.rng_state()
        a.draw_classified(3, partition)
        assert a.rng_state() != b.rng_state()
        b.draw_classified(3, partition)
        assert a.rng_state() == b.rng_state()

    @pytest.mark.parametrize("factory", [
        lambda p: UniformSampler(p.fault_space, seed=9),
        lambda p: LiveOnlySampler(p, seed=9),
        lambda p: BiasedClassSampler(p, seed=9),
    ])
    def test_all_samplers_expose_resumable_state(self, factory):
        partition = self._partition()
        first = factory(partition)
        whole = (first.draw_classified(12, partition)
                 if isinstance(first, UniformSampler)
                 else first.draw_classified(12))
        second = factory(partition)
        prefix = (second.draw_classified(5, partition)
                  if isinstance(second, UniformSampler)
                  else second.draw_classified(5))
        resumed = factory(partition)
        resumed.set_rng_state(second.rng_state())
        rest = (resumed.draw_classified(7, partition)
                if isinstance(resumed, UniformSampler)
                else resumed.draw_classified(7))
        assert prefix + rest == whole
