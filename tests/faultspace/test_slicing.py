"""Backward criticality slicing: sink rules and soundness.

The load-bearing property is *soundness*: a cell the slice calls
non-critical must, when corrupted, reproduce the golden outcome
exactly.  The exhaustive tests below check that against ground truth
(every live fault-space cell actually executed) on several micro
programs for both fault domains.  Precision (how many cells the slice
proves benign) is a performance property and only smoke-tested.
"""

import pytest

from repro.campaign import record_golden
from repro.campaign.experiment import ExperimentExecutor
from repro.faultspace import backward_slice, get_domain
from repro.faultspace.defuse import LIVE
from repro.isa import assemble
from repro.programs import hi, micro


def _assemble(source, ram_size=16):
    return assemble(source, ram_size=ram_size)


class TestSinkRules:
    def test_out_operand_is_critical(self):
        golden = record_golden(_assemble("""
        .text
        li   r1, 65
        out  r1
        halt
        """))
        crit = backward_slice(golden)
        # r1 is critical between the li (cycle 1) and the out (cycle 2):
        # corrupting it at point 1 changes the emitted byte.
        assert crit.reg_critical(1, 1)

    def test_branch_operand_is_critical(self):
        golden = record_golden(_assemble("""
        .text
        li   r1, 1
        bnez r1, done
        halt
done:   halt
        """))
        crit = backward_slice(golden)
        assert crit.reg_critical(1, 1)

    def test_address_operand_is_critical_even_when_value_is_dead(self):
        # r1 only serves as a store address; the stored byte is never
        # read.  A corrupt address could still trap or clobber other
        # state, so r1 must be critical.
        golden = record_golden(_assemble("""
        .data
buf:    .byte 0, 0, 0, 0
        .text
        li   r1, buf
        li   r2, 7
        sb   r2, 0(r1)
        halt
        """))
        crit = backward_slice(golden)
        assert crit.reg_critical(2, 1)

    def test_divisor_is_critical_even_when_quotient_is_dead(self):
        # The quotient in r3 is never used, but a corrupt divisor can
        # become zero and trap, so r2 must be critical before the divu.
        golden = record_golden(_assemble("""
        .text
        li   r1, 10
        li   r2, 5
        divu r3, r1, r2
        halt
        """))
        crit = backward_slice(golden)
        assert crit.reg_critical(2, 2)
        # The dividend only feeds the dead quotient: non-critical.
        assert not crit.reg_critical(2, 1)

    def test_value_chain_into_dead_store_is_not_critical(self):
        # v is loaded, incremented and stored back, but nothing that is
        # ever output or branched on depends on it: the whole chain is
        # non-critical even though the byte is def/use-live (it is
        # read).
        golden = record_golden(_assemble("""
        .data
v:      .word 5
        .text
        lw   r1, v(zero)
        addi r1, r1, 1
        sw   r1, v(zero)
        li   r2, 65
        out  r2
        halt
        """))
        crit = backward_slice(golden)
        v = golden.program.data_labels["v"]
        assert not crit.byte_critical(0, v)
        assert not crit.reg_critical(1, 1)


@pytest.mark.parametrize("domain_name", ["memory", "register"])
@pytest.mark.parametrize("factory", [
    lambda: micro.counter(2),
    lambda: micro.memcopy(3),
    lambda: micro.checksum_loop(2),
    lambda: hi.baseline(),
], ids=["counter", "memcopy", "checksum", "hi"])
def test_noncritical_cells_reproduce_the_golden_outcome(
        domain_name, factory):
    """Exhaustive soundness: every non-critical live cell is a no-effect.

    Ground truth comes from executing every experiment with the
    convergence machinery disabled; there must be no cell the slice
    calls non-critical whose real outcome differs from the golden run's
    clean halt.
    """
    golden = record_golden(factory())
    domain = get_domain(domain_name)
    crit = backward_slice(golden)
    executor = ExperimentExecutor(golden, use_convergence=False,
                                  domain=domain)
    space = domain.fault_space(golden)
    checked = 0
    for slot in range(1, golden.cycles + 1):
        for coordinate in domain.slot_coordinates(space, slot):
            if domain.cell_critical(crit, coordinate):
                continue
            record = executor.run(coordinate)
            checked += 1
            assert record.outcome.name == "NO_EFFECT", coordinate
            assert record.end_cycle == golden.cycles, coordinate
            assert record.trap == "", coordinate
    assert checked > 0, "slice proved nothing non-critical"


@pytest.mark.parametrize("domain_name", ["memory", "register"])
def test_defuse_dead_cells_are_noncritical(domain_name):
    """Def/use deadness is a strict subset of non-criticality."""
    golden = record_golden(micro.memcopy(3))
    domain = get_domain(domain_name)
    crit = backward_slice(golden)
    partition = domain.build_partition(golden)
    space = domain.fault_space(golden)
    for slot in range(1, golden.cycles + 1):
        for coordinate in domain.slot_coordinates(space, slot):
            if partition.locate(coordinate).kind != LIVE:
                assert not domain.cell_critical(crit, coordinate), \
                    coordinate


def test_timelines_cover_the_whole_run():
    """Queries at the first and last points stay in range."""
    golden = record_golden(micro.counter(2))
    crit = backward_slice(golden)
    for addr in range(golden.program.ram_size):
        crit.byte_critical(0, addr)
        crit.byte_critical(golden.cycles - 1, addr)
    for reg in range(16):
        crit.reg_critical(0, reg)
        crit.reg_critical(golden.cycles - 1, reg)


def test_slice_works_without_recorded_pc_trace():
    """Hand-built golden runs replay their pc trace on demand."""
    import dataclasses
    golden = record_golden(micro.counter(1))
    stripped = dataclasses.replace(golden, pc_trace=None)
    assert backward_slice(stripped).byte_timelines \
        == backward_slice(golden).byte_timelines
