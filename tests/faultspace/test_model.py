"""Unit and property tests for the fault-space grid model."""

import pytest
from hypothesis import given, strategies as st

from repro.faultspace import FaultCoordinate, FaultSpace


class TestFaultCoordinate:
    def test_valid_coordinate(self):
        coord = FaultCoordinate(slot=3, addr=5, bit=7)
        assert coord.bit_index == 5 * 8 + 7

    @pytest.mark.parametrize("slot,addr,bit", [
        (0, 0, 0),     # slots are 1-based
        (1, -1, 0),
        (1, 0, 8),
        (1, 0, -1),
    ])
    def test_invalid_coordinates_rejected(self, slot, addr, bit):
        with pytest.raises(ValueError):
            FaultCoordinate(slot=slot, addr=addr, bit=bit)

    def test_ordering_is_slot_major(self):
        early = FaultCoordinate(slot=1, addr=9, bit=7)
        late = FaultCoordinate(slot=2, addr=0, bit=0)
        assert early < late


class TestFaultSpace:
    def test_size_is_cycles_times_bits(self):
        space = FaultSpace(cycles=8, ram_bytes=2)
        assert space.memory_bits == 16
        assert space.size == 128

    def test_degenerate_spaces_rejected(self):
        with pytest.raises(ValueError):
            FaultSpace(cycles=0, ram_bytes=1)
        with pytest.raises(ValueError):
            FaultSpace(cycles=1, ram_bytes=0)

    def test_contains(self):
        space = FaultSpace(cycles=4, ram_bytes=2)
        assert space.contains(FaultCoordinate(slot=4, addr=1, bit=7))
        assert not space.contains(FaultCoordinate(slot=5, addr=0, bit=0))
        assert not space.contains(FaultCoordinate(slot=1, addr=2, bit=0))

    def test_iter_covers_every_coordinate_once(self):
        space = FaultSpace(cycles=3, ram_bytes=2)
        coords = list(space.iter_coordinates())
        assert len(coords) == space.size
        assert len(set(coords)) == space.size

    def test_index_out_of_range_rejected(self):
        space = FaultSpace(cycles=2, ram_bytes=1)
        with pytest.raises(IndexError):
            space.coordinate(space.size)
        with pytest.raises(IndexError):
            space.index(FaultCoordinate(slot=3, addr=0, bit=0))

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50),
           st.data())
    def test_index_coordinate_roundtrip(self, cycles, ram_bytes, data):
        space = FaultSpace(cycles=cycles, ram_bytes=ram_bytes)
        index = data.draw(st.integers(min_value=0,
                                      max_value=space.size - 1))
        coord = space.coordinate(index)
        assert space.contains(coord)
        assert space.index(coord) == index

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=20))
    def test_iteration_matches_flat_indexing(self, cycles, ram_bytes):
        space = FaultSpace(cycles=cycles, ram_bytes=ram_bytes)
        for index, coord in enumerate(space.iter_coordinates()):
            assert space.index(coord) == index
            if index > 64:
                break
