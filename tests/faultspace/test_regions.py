"""Tests for named memory regions."""

import pytest

from repro.faultspace import Region, RegionMap


class TestRegion:
    def test_size_and_contains(self):
        region = Region(start=4, end=8, name="obj")
        assert region.size == 4
        assert region.contains(4)
        assert region.contains(7)
        assert not region.contains(8)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region(start=4, end=4)
        with pytest.raises(ValueError):
            Region(start=-1, end=3)


class TestRegionMap:
    def test_add_and_lookup(self):
        regions = RegionMap(ram_size=64)
        regions.add(0, 16, "kernel")
        regions.add(16, 32, "app")
        assert regions.name_of(0) == "kernel"
        assert regions.name_of(31) == "app"
        assert regions.name_of(40) == "unmapped"

    def test_overlap_rejected(self):
        regions = RegionMap(ram_size=64)
        regions.add(0, 16, "a")
        with pytest.raises(ValueError, match="overlaps"):
            regions.add(8, 24, "b")

    def test_region_beyond_ram_rejected(self):
        regions = RegionMap(ram_size=16)
        with pytest.raises(ValueError, match="exceeds RAM"):
            regions.add(8, 24, "big")

    def test_lookup_out_of_ram_rejected(self):
        regions = RegionMap(ram_size=16)
        with pytest.raises(IndexError):
            regions.lookup(16)

    def test_coverage_fraction(self):
        regions = RegionMap(ram_size=32)
        regions.add(0, 8, "a")
        regions.add(24, 32, "b")
        assert regions.coverage() == pytest.approx(0.5)

    def test_regions_sorted_by_start(self):
        regions = RegionMap(ram_size=64)
        regions.add(32, 48, "late")
        regions.add(0, 8, "early")
        assert [r.name for r in regions.regions] == ["early", "late"]
