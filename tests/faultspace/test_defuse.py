"""Unit and property tests for def/use pruning (Section III-C)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faultspace import (
    ByteInterval,
    DEAD,
    DefUsePartition,
    FaultCoordinate,
    FaultSpace,
    LIVE,
)
from repro.isa import MemoryTrace, READ, WRITE


def make_trace(total_slots, events_by_addr):
    """events_by_addr: {addr: [(slot, READ|WRITE), ...]}"""
    trace = MemoryTrace()
    for addr, events in events_by_addr.items():
        for slot, kind in events:
            trace.record(slot, addr, 1, kind)
    trace.finish(total_slots)
    return trace


class TestByteInterval:
    def test_weight_is_lifetime_times_bits(self):
        interval = ByteInterval(addr=0, first_slot=3, last_slot=5,
                                kind=LIVE)
        assert interval.length == 3
        assert interval.weight_bits == 24
        assert interval.injection_slot == 5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            ByteInterval(addr=0, first_slot=5, last_slot=4, kind=LIVE)

    def test_live_interval_yields_eight_experiments(self):
        interval = ByteInterval(addr=2, first_slot=1, last_slot=4,
                                kind=LIVE)
        experiments = interval.experiments()
        assert len(experiments) == 8
        assert all(c.slot == 4 and c.addr == 2 for c in experiments)
        assert sorted(c.bit for c in experiments) == list(range(8))

    def test_dead_interval_has_no_experiments(self):
        interval = ByteInterval(addr=0, first_slot=1, last_slot=2,
                                kind=DEAD)
        with pytest.raises(ValueError):
            interval.experiments()


class TestPartitionConstruction:
    def test_paper_figure_1b_example(self):
        # One byte: written at slot 4, read at slot 11, run of 12 slots.
        # Expect: [1..4] dead (overwritten), [5..11] live (weight 7),
        # [12..12] dead (never read again).
        trace = make_trace(12, {0: [(4, WRITE), (11, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=12, ram_bytes=1))
        partition.validate()
        intervals = partition.byte_intervals(0)
        assert [(iv.first_slot, iv.last_slot, iv.kind)
                for iv in intervals] == [
            (1, 4, DEAD), (5, 11, LIVE), (12, 12, DEAD)]
        assert intervals[1].length == 7

    def test_untouched_byte_is_one_dead_interval(self):
        trace = make_trace(5, {})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=5, ram_bytes=2))
        for addr in (0, 1):
            intervals = partition.byte_intervals(addr)
            assert [(iv.first_slot, iv.last_slot, iv.kind)
                    for iv in intervals] == [(1, 5, DEAD)]

    def test_read_of_initial_data_is_live_from_reset(self):
        # Initialized-at-load data read at slot 3: live window [1..3].
        trace = make_trace(4, {0: [(3, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=4, ram_bytes=1))
        intervals = partition.byte_intervals(0)
        assert intervals[0].kind == LIVE
        assert (intervals[0].first_slot, intervals[0].last_slot) == (1, 3)

    def test_back_to_back_reads_form_consecutive_live_classes(self):
        trace = make_trace(4, {0: [(2, READ), (3, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=4, ram_bytes=1))
        kinds = [(iv.first_slot, iv.last_slot, iv.kind)
                 for iv in partition.byte_intervals(0)]
        assert kinds == [(1, 2, LIVE), (3, 3, LIVE), (4, 4, DEAD)]

    def test_write_after_write_is_dead(self):
        trace = make_trace(3, {0: [(1, WRITE), (2, WRITE), (3, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=3, ram_bytes=1))
        kinds = [iv.kind for iv in partition.byte_intervals(0)]
        assert kinds == [DEAD, DEAD, LIVE]

    def test_mismatched_trace_length_rejected(self):
        trace = make_trace(5, {})
        with pytest.raises(ValueError, match="5 slots"):
            DefUsePartition.from_trace(trace,
                                       FaultSpace(cycles=6, ram_bytes=1))

    def test_access_beyond_run_end_rejected(self):
        trace = make_trace(2, {0: [(3, READ)]})
        with pytest.raises(ValueError, match="beyond run end"):
            DefUsePartition.from_trace(trace,
                                       FaultSpace(cycles=2, ram_bytes=1))


class TestPartitionAccounting:
    def test_weights_partition_the_fault_space(self):
        trace = make_trace(12, {0: [(4, WRITE), (11, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=12, ram_bytes=3))
        assert partition.total_weight == partition.fault_space.size
        assert (partition.live_weight
                + partition.known_no_effect_weight
                == partition.fault_space.size)

    def test_experiment_count_is_eight_per_live_class(self):
        trace = make_trace(6, {0: [(2, READ), (5, READ)],
                               1: [(3, WRITE)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=6, ram_bytes=2))
        assert partition.experiment_count == 16

    def test_reduction_factor(self):
        trace = make_trace(100, {0: [(100, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=100, ram_bytes=1))
        assert partition.experiment_count == 8
        assert partition.reduction_factor() == 100.0

    def test_locate_finds_containing_class(self):
        trace = make_trace(12, {0: [(4, WRITE), (11, READ)]})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=12, ram_bytes=1))
        assert partition.locate(
            FaultCoordinate(slot=4, addr=0, bit=0)).kind == DEAD
        live = partition.locate(FaultCoordinate(slot=5, addr=0, bit=3))
        assert live.kind == LIVE
        assert live.covers(5)

    def test_locate_outside_space_rejected(self):
        trace = make_trace(3, {})
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=3, ram_bytes=1))
        with pytest.raises(IndexError):
            partition.locate(FaultCoordinate(slot=4, addr=0, bit=0))


@st.composite
def random_traces(draw):
    """A random consistent access pattern over a small fault space."""
    cycles = draw(st.integers(min_value=1, max_value=30))
    ram_bytes = draw(st.integers(min_value=1, max_value=4))
    events = {}
    for addr in range(ram_bytes):
        slots = draw(st.lists(st.integers(min_value=1, max_value=cycles),
                              unique=True, max_size=10))
        kinds = draw(st.lists(st.sampled_from([READ, WRITE]),
                              min_size=len(slots), max_size=len(slots)))
        events[addr] = sorted(zip(slots, kinds))
    return cycles, ram_bytes, events


class TestPartitionProperties:
    @given(random_traces())
    @settings(max_examples=200)
    def test_partition_always_tiles_the_space(self, case):
        cycles, ram_bytes, events = case
        trace = make_trace(cycles, events)
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=cycles, ram_bytes=ram_bytes))
        partition.validate()  # tiling + weight invariants

    @given(random_traces(), st.data())
    @settings(max_examples=200)
    def test_locate_agrees_with_interval_bounds(self, case, data):
        cycles, ram_bytes, events = case
        trace = make_trace(cycles, events)
        space = FaultSpace(cycles=cycles, ram_bytes=ram_bytes)
        partition = DefUsePartition.from_trace(trace, space)
        index = data.draw(st.integers(min_value=0,
                                      max_value=space.size - 1))
        coord = space.coordinate(index)
        interval = partition.locate(coord)
        assert interval.addr == coord.addr
        assert interval.covers(coord.slot)

    @given(random_traces())
    @settings(max_examples=100)
    def test_live_classes_end_in_reads(self, case):
        cycles, ram_bytes, events = case
        trace = make_trace(cycles, events)
        partition = DefUsePartition.from_trace(
            trace, FaultSpace(cycles=cycles, ram_bytes=ram_bytes))
        read_slots = {(addr, e.slot) for addr, evs in events.items()
                      for e in [type("E", (), {"slot": s, "kind": k})()
                                for s, k in evs] if e.kind == READ}
        for interval in partition.live_classes():
            assert (interval.addr, interval.last_slot) in read_slots
