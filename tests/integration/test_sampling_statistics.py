"""Statistical properties of the sampling estimators.

These tests check the estimator *as a distribution*: across many seeds,
the extrapolated failure count must be unbiased around the full-scan
truth, and confidence intervals must achieve (roughly) their nominal
coverage.
"""

import statistics

import pytest

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.metrics import (
    extrapolated_failure_count,
    extrapolated_failure_interval,
    weighted_failure_count,
)
from repro.programs import micro

N_SEEDS = 40
SAMPLES = 300


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.checksum_loop(3))


@pytest.fixture(scope="module")
def truth(golden):
    return weighted_failure_count(run_full_scan(golden)).total


@pytest.fixture(scope="module")
def estimates(golden):
    partition = golden.partition()
    values = []
    intervals = []
    for seed in range(N_SEEDS):
        result = run_sampling(golden, SAMPLES, seed=seed,
                              partition=partition)
        values.append(extrapolated_failure_count(result).total)
        intervals.append(extrapolated_failure_interval(result, 0.95))
    return values, intervals


class TestEstimatorDistribution:
    def test_extrapolation_is_unbiased(self, estimates, truth):
        values, _ = estimates
        mean = statistics.mean(values)
        sem = statistics.stdev(values) / (len(values) ** 0.5)
        # Mean within 3 standard errors of the truth.
        assert abs(mean - truth) < 3 * sem + 1e-9

    def test_interval_coverage_near_nominal(self, estimates, truth):
        _, intervals = estimates
        hits = sum(1 for iv in intervals if iv.contains(truth))
        # 95% nominal; with 40 trials allow down to 80%.
        assert hits / len(intervals) >= 0.8

    def test_estimator_variance_shrinks_with_n(self, golden):
        partition = golden.partition()

        def spread(n):
            values = [extrapolated_failure_count(
                run_sampling(golden, n, seed=s, partition=partition)
            ).total for s in range(15)]
            return statistics.stdev(values)

        assert spread(800) < spread(64)

    def test_live_only_estimator_agrees_with_raw(self, golden, truth):
        partition = golden.partition()
        raw = [extrapolated_failure_count(
            run_sampling(golden, SAMPLES, seed=s,
                         partition=partition)).total
            for s in range(10)]
        live = [extrapolated_failure_count(
            run_sampling(golden, SAMPLES, seed=s, sampler="live-only",
                         partition=partition)).total
            for s in range(10)]
        assert statistics.mean(live) == pytest.approx(
            statistics.mean(raw), rel=0.2)
        # Live-only sampling wastes no samples on dead coordinates, so
        # its estimator is tighter at equal N.
        assert statistics.stdev(live) <= statistics.stdev(raw) + 1e-9
