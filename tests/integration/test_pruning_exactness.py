"""The project's keystone property (Pitfall 1, stated executably):

def/use pruning is an *optimization* — a pruned, weighted full scan must
agree with the brute-force scan (one real experiment per raw fault-space
coordinate) on **every single coordinate**, and therefore on every
derived count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import record_golden, run_brute_force, run_full_scan
from repro.isa import assemble
from repro.programs import hi, micro


def assert_scan_equals_brute_force(program):
    golden = record_golden(program)
    scan = run_full_scan(golden)
    brute = run_brute_force(golden)
    for coord, outcome in brute.outcomes.items():
        assert scan.outcome_of(coord) == outcome, (
            f"{program.name}: pruned scan disagrees at {coord}")
    assert scan.weighted_counts() == brute.counts()


@pytest.mark.parametrize("thunk", [
    hi.baseline,
    lambda: hi.dft_variant(4),
    lambda: hi.dft_prime_variant(4),
    lambda: micro.counter(3),
    lambda: micro.memcopy(3),
    lambda: micro.checksum_loop(2),
    lambda: micro.stack_echo(2),
], ids=["hi", "hi-dft", "hi-dftprime", "counter", "memcopy", "checksum",
        "stack"])
def test_pruned_scan_equals_brute_force(thunk):
    assert_scan_equals_brute_force(thunk())


# -- randomized straight-line programs ---------------------------------------

_REGS = ["r1", "r2", "r3"]


@st.composite
def straightline_programs(draw):
    """Random short programs over a 4-byte RAM with stores, loads,
    arithmetic and output — enough variety to stress the def/use logic
    (multi-generation defs, partial-word overlap, dead stores)."""
    n = draw(st.integers(min_value=1, max_value=10))
    lines = ["        .text", "start:"]
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["sb", "sw", "lbu", "lw", "addi", "out"]))
        reg = draw(st.sampled_from(_REGS))
        if kind == "sb":
            addr = draw(st.integers(min_value=0, max_value=3))
            lines.append(f"        sb   {reg}, {addr}(zero)")
        elif kind == "sw":
            lines.append(f"        sw   {reg}, 0(zero)")
        elif kind == "lbu":
            addr = draw(st.integers(min_value=0, max_value=3))
            lines.append(f"        lbu  {reg}, {addr}(zero)")
        elif kind == "lw":
            lines.append(f"        lw   {reg}, 0(zero)")
        elif kind == "addi":
            imm = draw(st.integers(min_value=-8, max_value=8))
            lines.append(f"        addi {reg}, {reg}, {imm}")
        else:
            lines.append(f"        out  {reg}")
    lines.append("        halt")
    return "\n".join(lines) + "\n"


@given(straightline_programs())
@settings(max_examples=30, deadline=None)
def test_pruning_exactness_on_random_programs(source):
    program = assemble(source, name="random", ram_size=4)
    assert_scan_equals_brute_force(program)


def test_pruning_exactness_with_branching_program():
    """A program whose control flow depends on RAM contents — faults can
    change the executed path entirely."""
    source = """
        .data
flag:   .byte 1
a:      .byte 10
b:      .byte 20
        .text
start:  lbu  r1, flag(zero)
        beqz r1, other
        lbu  r2, a(zero)
        out  r2
        halt
other:  lbu  r2, b(zero)
        out  r2
        halt
"""
    assert_scan_equals_brute_force(assemble(source, ram_size=3))
