"""Executable statements of the paper's three pitfalls on live campaigns."""

import pytest

from repro.campaign import record_golden, run_full_scan, run_sampling
from repro.metrics import (
    compare,
    comparison_report,
    extrapolated_failure_count,
    raw_sample_failure_count,
    sampled_coverage,
    unweighted_coverage,
    weighted_coverage,
    weighted_failure_count,
)
from repro.isa import assemble
from repro.programs import hi


@pytest.fixture(scope="module")
def skewed_golden():
    """A program with a strong correlation between def/use class size
    and outcome: a long-lived failure-critical byte plus several
    short-lived ones. This is the setting where Pitfall 1 bites."""
    source = """
        .data
crit:   .byte 7
tmp:    .byte 0
        .text
start:  li   r1, 1
        sb   r1, tmp(zero)
        lbu  r2, tmp(zero)
        sb   r2, tmp(zero)
        lbu  r2, tmp(zero)
        sb   r2, tmp(zero)
        lbu  r2, tmp(zero)
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        lbu  r3, crit(zero)
        out  r3
        halt
"""
    return record_golden(assemble(source, name="skewed", ram_size=2))


class TestPitfall1UnweightedAccounting:
    def test_unweighted_coverage_differs_from_weighted(self,
                                                       skewed_golden):
        scan = run_full_scan(skewed_golden)
        weighted = weighted_coverage(scan)
        unweighted = unweighted_coverage(scan)
        # The long-lived critical byte dominates the weighted number but
        # is just one experiment among many in the unweighted one.
        assert abs(weighted - unweighted) > 0.05

    def test_weighted_counts_match_ground_truth(self, skewed_golden):
        from repro.campaign import run_brute_force
        scan = run_full_scan(skewed_golden)
        brute = run_brute_force(skewed_golden)
        assert scan.weighted_counts() == brute.counts()
        assert scan.raw_counts() != brute.counts()


class TestPitfall2BiasedSampling:
    def test_biased_sampler_misestimates_failure_proportion(
            self, skewed_golden):
        scan = run_full_scan(skewed_golden)
        truth = 1.0 - weighted_coverage(scan)
        uniform = run_sampling(skewed_golden, 1500, seed=0,
                               sampler="uniform")
        biased = run_sampling(skewed_golden, 1500, seed=0,
                              sampler="biased-class")
        uniform_error = abs(
            uniform.failure_count() / uniform.n_samples - truth)
        biased_error = abs(
            biased.failure_count() / biased.n_samples - truth)
        assert uniform_error < 0.05
        assert biased_error > 2 * uniform_error

    def test_uniform_sampling_counts_all_samples_per_class(
            self, skewed_golden):
        result = run_sampling(skewed_golden, 800, seed=1)
        assert result.n_samples == 800
        assert result.experiments_conducted < 800


class TestPitfall3FaultCoverage:
    def test_dilution_inflates_coverage_but_not_failure_count(self):
        base = run_full_scan(record_golden(hi.baseline()))
        dft = run_full_scan(record_golden(hi.dft_variant(4)))
        assert weighted_coverage(dft) > weighted_coverage(base)
        assert weighted_failure_count(dft).total \
            == weighted_failure_count(base).total
        assert compare(base, dft).ratio == 1.0

    def test_report_flags_coverage_as_misleading_for_dft(self):
        base = run_full_scan(record_golden(hi.baseline()))
        dft = run_full_scan(record_golden(hi.dft_variant(4)))
        report = comparison_report("hi", base, dft)
        assert "coverage weighted (pitfall 3)" in \
            report.misleading_metrics()

    def test_corollary2_raw_sample_counts_mislead(self):
        """Raw sampled failure counts depend on N_sampled; extrapolated
        counts do not."""
        golden = record_golden(hi.baseline())
        small = run_sampling(golden, 200, seed=2)
        large = run_sampling(golden, 2000, seed=2)
        raw_small = raw_sample_failure_count(small).total
        raw_large = raw_sample_failure_count(large).total
        assert raw_large > 5 * raw_small  # raw counts just track N
        ext_small = extrapolated_failure_count(small).total
        ext_large = extrapolated_failure_count(large).total
        assert ext_small == pytest.approx(48, rel=0.25)
        assert ext_large == pytest.approx(48, rel=0.1)

    def test_corollary1_no_effect_counts_are_excluded(self):
        golden = record_golden(hi.baseline())
        scan = run_full_scan(golden)
        count = weighted_failure_count(scan)
        assert all(outcome.is_failure for outcome in count.by_mode)

    def test_sampled_coverage_reproduces_the_delusion(self):
        """Even sampling faithfully estimates the (misleading) coverage
        gain of DFT — the problem is the metric, not the estimator."""
        base = run_sampling(record_golden(hi.baseline()), 2000, seed=3)
        dft = run_sampling(record_golden(hi.dft_variant(4)), 2000, seed=3)
        assert sampled_coverage(dft) > sampled_coverage(base)
