"""Reduced-scale checks of the paper's Figure 2 shapes.

The benchmark harness validates the paper-scale configurations; these
tests run the same four-way comparison at reduced benchmark sizes so
the shapes are exercised on every test run within seconds.
"""

import pytest

from repro.campaign import record_golden, run_full_scan
from repro.metrics import (
    comparison_report,
    unweighted_coverage,
    weighted_coverage,
)
from repro.programs import bin_sem2


@pytest.fixture(scope="module")
def scans():
    return {
        "base": run_full_scan(record_golden(bin_sem2.baseline(rounds=2))),
        "hard": run_full_scan(record_golden(bin_sem2.hardened(rounds=2))),
    }


class TestBinSem2Shapes:
    def test_unweighted_coverage_underestimates(self, scans):
        for scan in scans.values():
            assert unweighted_coverage(scan) < weighted_coverage(scan)

    def test_weighted_coverage_improves(self, scans):
        assert weighted_coverage(scans["hard"]) \
            > weighted_coverage(scans["base"])

    def test_sound_metric_shows_improvement(self, scans):
        report = comparison_report("bin_sem2", scans["base"],
                                   scans["hard"])
        assert report.ratio < 1.0

    def test_unweighted_counts_flip_the_verdict(self, scans):
        report = comparison_report("bin_sem2", scans["base"],
                                   scans["hard"])
        assert report.unweighted_ratio > 1.0
        assert "failure-count unweighted (pitfall 1)" in \
            report.misleading_metrics()

    def test_hardened_detects_and_corrects(self, scans):
        """The SUM+DMR variant turns a substantial share of would-be
        failures into benign detected-and-corrected outcomes."""
        from repro.campaign import Outcome
        counts = scans["hard"].weighted_counts()
        assert counts[Outcome.DETECTED_CORRECTED] > 0
        baseline_counts = scans["base"].weighted_counts()
        assert baseline_counts[Outcome.DETECTED_CORRECTED] == 0

    def test_fail_stop_mode_appears_only_in_hardened(self, scans):
        from repro.campaign import Outcome
        hard_counts = scans["hard"].weighted_counts()
        base_counts = scans["base"].weighted_counts()
        assert base_counts[Outcome.DETECTED_FAIL_STOP] == 0
        assert hard_counts[Outcome.DETECTED_FAIL_STOP] >= 0
