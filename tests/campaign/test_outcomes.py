"""Tests for the outcome taxonomy and classifier."""

import pytest

from repro.campaign import (
    BENIGN_OUTCOMES,
    FAILURE_OUTCOMES,
    Outcome,
    PANIC_CODE,
    classify,
)

GOLDEN = b"Hello"


class TestTaxonomy:
    def test_eight_outcome_types(self):
        assert len(Outcome) == 8

    def test_two_benign_six_failure(self):
        assert len(BENIGN_OUTCOMES) == 2
        assert len(FAILURE_OUTCOMES) == 6

    def test_benign_partition(self):
        assert set(BENIGN_OUTCOMES) == {Outcome.NO_EFFECT,
                                        Outcome.DETECTED_CORRECTED}
        for outcome in Outcome:
            assert outcome.is_failure != outcome.is_benign


class TestClassify:
    def base(self, **overrides):
        kwargs = dict(golden_output=GOLDEN, output=GOLDEN,
                      halted_cleanly=True, trapped=False, timed_out=False,
                      detections=())
        kwargs.update(overrides)
        return classify(**kwargs)

    def test_identical_run_is_no_effect(self):
        assert self.base() is Outcome.NO_EFFECT

    def test_correct_output_with_detection_is_corrected(self):
        assert self.base(detections=((10, 1),)) \
            is Outcome.DETECTED_CORRECTED

    def test_timeout_wins_over_everything(self):
        assert self.base(timed_out=True, halted_cleanly=False) \
            is Outcome.TIMEOUT

    def test_trap_is_cpu_exception(self):
        assert self.base(trapped=True, halted_cleanly=False,
                         output=b"He") is Outcome.CPU_EXCEPTION

    def test_wrong_output_is_sdc(self):
        assert self.base(output=b"Hxllo") is Outcome.SDC

    def test_longer_output_is_sdc(self):
        assert self.base(output=GOLDEN + b"!") is Outcome.SDC

    def test_strict_prefix_is_truncated(self):
        assert self.base(output=b"He") is Outcome.OUTPUT_TRUNCATED

    def test_empty_output_is_truncated(self):
        assert self.base(output=b"") is Outcome.OUTPUT_TRUNCATED

    def test_panic_detection_is_fail_stop(self):
        assert self.base(output=b"He", detections=((5, PANIC_CODE),)) \
            is Outcome.DETECTED_FAIL_STOP

    def test_non_panic_detection_with_wrong_output_is_uncorrected(self):
        assert self.base(output=b"Hxllo", detections=((5, 1),)) \
            is Outcome.DETECTED_UNCORRECTED

    def test_unclassifiable_state_rejected(self):
        with pytest.raises(ValueError):
            self.base(halted_cleanly=False)
