"""Tests for campaign result persistence and caching."""

import json

import pytest

from repro.campaign import (
    CampaignCache,
    CampaignSummary,
    Outcome,
    export_class_results_csv,
    import_class_results_csv,
    program_fingerprint,
    record_golden,
    run_full_scan,
)
from repro.programs import hi


@pytest.fixture(scope="module")
def hi_scan():
    return run_full_scan(record_golden(hi.baseline()))


@pytest.fixture(scope="module")
def hi_register_scan():
    return run_full_scan(record_golden(hi.baseline()), domain="register")


class TestCampaignSummary:
    def test_from_result_captures_counts(self, hi_scan):
        summary = CampaignSummary.from_result(hi_scan)
        assert summary.fault_space_size == 128
        assert summary.cycles == 8
        assert summary.weighted() == dict(hi_scan.weighted_counts())
        assert summary.raw() == dict(hi_scan.raw_counts())

    def test_json_roundtrip(self, hi_scan):
        summary = CampaignSummary.from_result(hi_scan)
        assert summary.domain == "memory"
        clone = CampaignSummary.from_json(summary.to_json())
        assert clone == summary

    def test_register_domain_roundtrip(self, hi_register_scan):
        summary = CampaignSummary.from_result(hi_register_scan)
        assert summary.domain == "register"
        clone = CampaignSummary.from_json(summary.to_json())
        assert clone == summary
        assert clone.domain == "register"

    def test_legacy_json_without_domain_loads_as_memory(self, hi_scan):
        """Summaries cached before the domain field existed still load."""
        summary = CampaignSummary.from_result(hi_scan)
        legacy = json.loads(summary.to_json())
        del legacy["domain"]
        clone = CampaignSummary.from_json(json.dumps(legacy))
        assert clone.domain == "memory"
        assert clone == summary


class TestFingerprint:
    def test_same_program_same_fingerprint(self):
        assert program_fingerprint(hi.baseline()) \
            == program_fingerprint(hi.baseline())

    def test_different_variants_differ(self):
        assert program_fingerprint(hi.baseline()) \
            != program_fingerprint(hi.dft_variant(4))

    def test_ram_size_affects_fingerprint(self):
        assert program_fingerprint(hi.baseline()) \
            != program_fingerprint(hi.memory_diluted_variant(2))


class TestCampaignCache:
    def test_get_or_run_runs_once(self, tmp_path, hi_scan):
        cache = CampaignCache(tmp_path)
        calls = []

        def thunk():
            calls.append(1)
            return hi_scan

        first = cache.get_or_run(hi.baseline(), thunk)
        second = cache.get_or_run(hi.baseline(), thunk)
        assert first == second
        assert len(calls) == 1

    def test_changed_program_invalidates_cache(self, tmp_path, hi_scan):
        cache = CampaignCache(tmp_path)
        cache.get_or_run(hi.baseline(), lambda: hi_scan)
        assert cache.load(hi.dft_variant(4)) is None

    def test_corrupt_cache_entry_is_ignored(self, tmp_path, hi_scan):
        cache = CampaignCache(tmp_path)
        cache.get_or_run(hi.baseline(), lambda: hi_scan)
        path = cache._path(hi.baseline())
        path.write_text("{not json")
        assert cache.load(hi.baseline()) is None

    def test_domains_cache_side_by_side(self, tmp_path, hi_scan,
                                        hi_register_scan):
        """One program, two domains: distinct entries, no collisions."""
        cache = CampaignCache(tmp_path)
        cache.get_or_run(hi.baseline(), lambda: hi_scan)
        cache.get_or_run(hi.baseline(), lambda: hi_register_scan,
                         domain="register")
        memory = cache.load(hi.baseline())
        register = cache.load(hi.baseline(), domain="register")
        assert memory.domain == "memory"
        assert register.domain == "register"
        assert memory.fault_space_size != register.fault_space_size

    def test_memory_domain_keeps_legacy_filenames(self, tmp_path, hi_scan):
        """Pre-domain cache files (no suffix) must still hit."""
        cache = CampaignCache(tmp_path)
        assert cache._path(hi.baseline()).name \
            == cache._path(hi.baseline(), "memory").name
        assert "-memory" not in cache._path(hi.baseline(), "memory").name
        assert cache._path(hi.baseline(), "register").name \
            .endswith("-register.json")


class TestCsvExport:
    def test_roundtrip(self, tmp_path, hi_scan):
        path = tmp_path / "results.csv"
        export_class_results_csv(hi_scan, path)
        rows = import_class_results_csv(path)
        records = hi_scan.class_records()
        assert len(rows) == len(records)
        for row, (interval, outcomes) in zip(rows, records):
            assert row["addr"] == interval.addr
            assert row["length"] == interval.length
            assert row["outcomes"] == outcomes

    def test_register_roundtrip_has_32_bit_columns(self, tmp_path,
                                                   hi_register_scan):
        path = tmp_path / "register-results.csv"
        export_class_results_csv(hi_register_scan, path)
        rows = import_class_results_csv(path)
        records = hi_register_scan.class_records()
        assert len(rows) == len(records)
        for row, (interval, outcomes) in zip(rows, records):
            assert row["addr"] == interval.reg
            assert len(row["outcomes"]) == 32
            assert row["outcomes"] == outcomes

    def test_reexport_is_byte_identical(self, tmp_path, hi_scan,
                                        hi_register_scan):
        """import → export must reproduce the file byte for byte, for
        both the 8-bit memory and 32-bit register column layouts."""
        from repro.campaign import export_class_rows_csv

        for name, scan in (("mem", hi_scan), ("reg", hi_register_scan)):
            original = tmp_path / f"{name}.csv"
            copy = tmp_path / f"{name}-copy.csv"
            export_class_results_csv(scan, original)
            export_class_rows_csv(import_class_results_csv(original), copy)
            assert copy.read_bytes() == original.read_bytes()

    def test_import_orders_bit_columns_numerically(self, tmp_path):
        """bit10 must sort after bit2 — a lexicographic sort would
        silently permute register outcomes."""
        path = tmp_path / "shuffled.csv"
        bits = 12
        header = ["addr", "first_slot", "last_slot", "length"] + [
            f"bit{b}" for b in reversed(range(bits))]
        values = ["5", "1", "4", "4"] + ["sdc"] * (bits - 1) + [
            "no-effect"]  # no-effect lands in the bit0 column
        path.write_text(",".join(header) + "\r\n"
                        + ",".join(values) + "\r\n")
        rows = import_class_results_csv(path)
        assert rows[0]["outcomes"][0] == Outcome.NO_EFFECT
        assert all(o == Outcome.SDC for o in rows[0]["outcomes"][1:])

    def test_import_tolerates_whitespace_in_numbers(self, tmp_path):
        path = tmp_path / "spaced.csv"
        path.write_text("addr,first_slot,last_slot,length,bit0\r\n"
                        " 3 , 1 , 2 , 2 ,no-effect\r\n")
        rows = import_class_results_csv(path)
        assert rows[0] == {"addr": 3, "first_slot": 1, "last_slot": 2,
                           "length": 2,
                           "outcomes": (Outcome.NO_EFFECT,)}

    def test_import_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("addr,first_slot,bit0\r\n1,2,sdc\r\n")
        with pytest.raises(ValueError, match="missing column"):
            import_class_results_csv(path)

    def test_import_rejects_gappy_bit_columns(self, tmp_path):
        path = tmp_path / "gappy.csv"
        path.write_text("addr,first_slot,last_slot,length,bit0,bit2\r\n"
                        "1,1,1,1,sdc,sdc\r\n")
        with pytest.raises(ValueError, match="not contiguous"):
            import_class_results_csv(path)

    def test_import_reports_malformed_rows_with_line_numbers(
            self, tmp_path):
        path = tmp_path / "corrupt.csv"
        path.write_text("addr,first_slot,last_slot,length,bit0\r\n"
                        "1,1,1,1,no-effect\r\n"
                        "2,1,1,one,sdc\r\n")
        with pytest.raises(ValueError, match="line 3"):
            import_class_results_csv(path)

    def test_import_rejects_unknown_outcome_values(self, tmp_path):
        path = tmp_path / "unknown.csv"
        path.write_text("addr,first_slot,last_slot,length,bit0\r\n"
                        "1,1,1,1,exploded\r\n")
        with pytest.raises(ValueError, match="line 2"):
            import_class_results_csv(path)
