"""Fault-domain abstraction: resolution, unified engine, parity.

These tests pin the tentpole contract of the unified campaign stack:
one engine, generic over :class:`~repro.faultspace.domain.FaultDomain`,
that reproduces the pre-refactor per-domain results bit-for-bit — for
full scans, brute force, and all three samplers, serial and sharded.
"""

import pickle

import pytest

from repro.campaign import (
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.campaign.registers import run_register_brute_force
from repro.faultspace import (
    DOMAINS,
    MEMORY,
    REGISTER,
    FaultCoordinate,
    MemoryDomain,
    RegisterDomain,
    get_domain,
)
from repro.faultspace.registers import (
    RegisterFaultCoordinate,
    RegisterFaultSpace,
)
from repro.metrics import weighted_coverage, weighted_failure_count
from repro.programs import hi, micro

JOB_COUNTS = (2, 4)
SAMPLERS = ("uniform", "live-only", "biased-class")


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.counter(2))


@pytest.fixture(scope="module")
def register_serial(golden):
    return run_full_scan(golden, domain="register")


class TestDomainRegistry:
    def test_registry_has_all_domains(self):
        assert set(DOMAINS) == {"memory", "register", "burst2", "burst4",
                                "stuck", "pc"}
        assert DOMAINS["memory"] is MEMORY
        assert DOMAINS["register"] is REGISTER

    def test_get_domain_by_name(self):
        assert get_domain("memory") is MEMORY
        assert get_domain("register") is REGISTER

    def test_get_domain_passthrough_and_default(self):
        assert get_domain(REGISTER) is REGISTER
        assert get_domain(None) is MEMORY

    def test_unknown_domain_lists_available(self):
        with pytest.raises(ValueError, match="register"):
            get_domain("cache")

    def test_domain_singletons_pickle_to_singletons(self):
        assert isinstance(pickle.loads(pickle.dumps(MEMORY)),
                          MemoryDomain)
        assert isinstance(pickle.loads(pickle.dumps(REGISTER)),
                          RegisterDomain)

    def test_bits_per_location(self):
        assert MEMORY.bits == 8
        assert REGISTER.bits == 32


class TestDomainGeometry:
    def test_memory_coordinate_roundtrip(self, golden):
        space = MEMORY.fault_space(golden)
        for index in (0, 1, space.size // 2, space.size - 1):
            coord = space.coordinate(index)
            assert space.index(coord) == index

    def test_register_coordinate_roundtrip(self, golden):
        space = REGISTER.fault_space(golden)
        for index in (0, 1, space.size // 2, space.size - 1):
            coord = space.coordinate(index)
            assert isinstance(coord, RegisterFaultCoordinate)
            assert space.contains(coord)
            assert space.index(coord) == index

    def test_register_space_row_major_layout(self):
        space = RegisterFaultSpace(cycles=3)
        assert space.slot_bits == 15 * 32
        first = space.coordinate(0)
        assert (first.slot, first.reg, first.bit) == (1, 1, 0)
        last = space.coordinate(space.size - 1)
        assert (last.slot, last.reg, last.bit) == (3, 15, 31)

    def test_slot_coordinates_cover_one_slot(self, golden):
        for domain in (MEMORY, REGISTER):
            space = domain.fault_space(golden)
            coords = list(domain.slot_coordinates(space, 1))
            assert len(coords) == space.size // golden.cycles
            assert all(c.slot == 1 for c in coords)

    def test_coordinate_axis_matches_class_key_axis(self, golden):
        for domain in (MEMORY, REGISTER):
            partition = domain.build_partition(golden)
            for interval in partition.live_classes()[:4]:
                coord = domain.coordinate(interval.injection_slot,
                                          domain.axis_of(interval), 0)
                assert domain.coordinate_axis(coord) \
                    == domain.axis_of(interval)


class TestUnifiedEngineParity:
    def test_register_scan_matches_brute_force_ground_truth(self,
                                                            register_serial):
        brute = run_register_brute_force(register_serial.golden)
        for coord, outcome in brute.items():
            assert register_serial.outcome_of(coord) == outcome, coord
        assert sum(register_serial.weighted_counts().values()) \
            == register_serial.fault_space_size

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_register_scan_parallel_identical_to_serial(self, golden,
                                                        register_serial,
                                                        jobs):
        parallel = run_full_scan(golden, domain="register", jobs=jobs)
        assert list(parallel.class_outcomes.items()) \
            == list(register_serial.class_outcomes.items())
        assert parallel.weighted_counts() \
            == register_serial.weighted_counts()
        assert parallel.raw_counts() == register_serial.raw_counts()

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_register_brute_force_parallel_identical(self, jobs):
        golden = record_golden(hi.baseline())
        serial = run_brute_force(golden, domain="register")
        parallel = run_brute_force(golden, domain="register", jobs=jobs)
        assert list(parallel.outcomes.items()) \
            == list(serial.outcomes.items())
        assert parallel.counts() == serial.counts()

    @pytest.mark.parametrize("sampler", SAMPLERS)
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_register_sampling_parallel_identical(self, golden, sampler,
                                                  jobs):
        serial = run_sampling(golden, 120, seed=9, sampler=sampler,
                              domain="register")
        parallel = run_sampling(golden, 120, seed=9, sampler=sampler,
                                domain="register", jobs=jobs)
        assert parallel.samples == serial.samples
        assert parallel.counts() == serial.counts()
        assert parallel.experiments_conducted \
            == serial.experiments_conducted

    def test_register_sampling_population_is_register_space(self, golden):
        result = run_sampling(golden, 50, seed=3, domain="register")
        assert result.population == REGISTER.fault_space(golden).size
        assert result.domain is REGISTER
        assert all(isinstance(sample.coordinate, RegisterFaultCoordinate)
                   for sample, _ in result.samples)

    def test_memory_default_unchanged(self, golden):
        explicit = run_full_scan(golden, domain="memory")
        implicit = run_full_scan(golden)
        assert implicit.domain is MEMORY
        assert list(implicit.class_outcomes.items()) \
            == list(explicit.class_outcomes.items())

    def test_memory_sampling_seed_stability(self, golden):
        """Domain plumbing must not perturb memory RNG sequences."""
        a = run_sampling(golden, 80, seed=5, sampler="biased-class")
        b = run_sampling(golden, 80, seed=5, sampler="biased-class",
                         domain=MEMORY)
        assert a.samples == b.samples
        assert all(isinstance(sample.coordinate, FaultCoordinate)
                   for sample, _ in a.samples)


class TestUnifiedMetrics:
    def test_metrics_accept_register_results(self, register_serial):
        coverage = weighted_coverage(register_serial)
        assert 0.0 <= coverage <= 1.0
        count = weighted_failure_count(register_serial)
        assert count.population \
            == REGISTER.fault_space(register_serial.golden).size
        assert count.total == register_serial.weighted_failure_count()

    def test_result_convenience_matches_metrics(self, register_serial):
        assert register_serial.weighted_coverage() \
            == weighted_coverage(register_serial)
