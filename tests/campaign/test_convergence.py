"""Convergence early-exit: exactness, compatibility, and the ladder.

The whole optimization is only admissible because it is outcome-
invariant: with ``use_convergence`` on or off, every campaign —
pruned scan, brute force, sampling; serial or parallel; fresh or
resumed from a killed journal — must produce *identical* results and
byte-identical CSV exports.  The tests here enforce that contract on
small programs where the off-side ground truth is cheap; the
benchmarks check it again at figure scale.
"""

import dataclasses

import pytest

from repro.campaign import (
    ExecutorConfig,
    export_class_results_csv,
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.campaign.experiment import ExperimentExecutor
from repro.campaign.golden import MAX_CHECKPOINTS
from repro.isa import Machine, assemble
from repro.programs import hi, micro

ON = ExecutorConfig(use_convergence=True)
OFF = ExecutorConfig(use_convergence=False)

FACTORIES = {
    "counter": lambda: micro.counter(3),
    "memcopy": lambda: micro.memcopy(4),
    "hi": hi.baseline,
}


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def golden(request):
    return record_golden(FACTORIES[request.param]())


class TestOutcomeInvariance:
    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_full_scan_equal_results_and_csv(self, golden, domain,
                                             tmp_path):
        on = run_full_scan(golden, domain=domain, config=ON,
                           keep_records=True)
        off = run_full_scan(golden, domain=domain, config=OFF,
                            keep_records=True)
        assert on == off
        on_csv, off_csv = tmp_path / "on.csv", tmp_path / "off.csv"
        export_class_results_csv(on, on_csv)
        export_class_results_csv(off, off_csv)
        assert on_csv.read_bytes() == off_csv.read_bytes()
        # The off side must never touch the convergence machinery.
        assert off.execution.convergence_hits == 0
        assert off.execution.slice_hits == 0

    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_brute_force_equal(self, golden, domain):
        on = run_brute_force(golden, domain=domain, config=ON)
        off = run_brute_force(golden, domain=domain, config=OFF)
        assert on == off

    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_sampling_equal(self, golden, domain):
        on = run_sampling(golden, 60, seed=7, domain=domain, config=ON)
        off = run_sampling(golden, 60, seed=7, domain=domain,
                           config=OFF)
        assert on == off

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_parallel_engine_equal(self, golden, jobs):
        serial_off = run_full_scan(golden, config=OFF)
        parallel_on = run_full_scan(golden, config=ON, jobs=jobs)
        assert parallel_on == serial_off

    def test_the_early_exits_actually_fire(self):
        """Guard against silently disabled machinery.  The pruned scan
        only visits live-class representatives, so ladder hits show up
        there; the criticality pre-skip pays off on the coordinates a
        brute-force campaign injects blindly."""
        golden = record_golden(hi.baseline())
        scan = run_full_scan(golden, domain="register", config=ON)
        assert scan.execution.convergence_hits > 0
        brute = run_brute_force(golden, domain="register", config=ON)
        assert brute.execution.slice_hits > 0


class TestJournalCompatibility:
    def test_convergence_flag_does_not_fork_the_journal_key(
            self, tmp_path):
        """A campaign journaled with convergence off finishes with it on
        (and vice versa): the flag is outcome-invariant, so it is not
        part of the campaign identity and resume crosses it freely."""
        golden = record_golden(micro.memcopy(4))
        baseline = run_full_scan(golden, config=OFF)

        class Interrupt(Exception):
            pass

        def die_after(n):
            def callback(done, total):
                if done >= n:
                    raise Interrupt
            return callback

        for first, second in [(OFF, ON), (ON, OFF)]:
            journal = tmp_path / f"{id(first)}.sqlite"
            with pytest.raises(Interrupt):
                run_full_scan(golden, config=first, journal=journal,
                              progress=die_after(3))
            resumed = run_full_scan(golden, config=second,
                                    journal=journal)
            assert resumed == baseline
            assert resumed.execution.resumed == 3


class TestOldGoldenCompatibility:
    """Golden runs unpickled from pre-ladder versions default both the
    ladder and the pc trace to ``None``; the executor must degrade to
    plain execution, not crash."""

    def test_missing_checkpoints_degrade_gracefully(self):
        golden = record_golden(micro.counter(3))
        stripped = dataclasses.replace(golden, checkpoints=None)
        on = run_full_scan(stripped, config=ON)
        off = run_full_scan(golden, config=OFF)
        # The goldens differ by construction (one has no ladder), so
        # compare the campaign payloads rather than whole results.
        assert on.class_outcomes == off.class_outcomes
        assert on.weighted_counts() == off.weighted_counts()

    def test_missing_pc_trace_degrades_gracefully(self):
        golden = record_golden(micro.counter(3))
        stripped = dataclasses.replace(golden, pc_trace=None,
                                       checkpoints=None)
        on = run_full_scan(stripped, config=ON)
        off = run_full_scan(golden, config=OFF)
        assert on.class_outcomes == off.class_outcomes
        assert on.weighted_counts() == off.weighted_counts()


class TestCheckpointLadder:
    def test_explicit_stride_is_honoured(self):
        golden = record_golden(micro.counter(5), checkpoint_stride=7)
        ladder = golden.checkpoints
        assert ladder.stride == 7
        # The halted state is never a rung (nothing can converge onto
        # it usefully), so only strictly-interior multiples count.
        assert len(ladder.digests) == (golden.cycles - 1) // 7

    def test_stride_zero_disables_the_ladder(self):
        golden = record_golden(micro.counter(3), checkpoint_stride=0)
        assert golden.checkpoints is None
        result = run_full_scan(golden, config=ON)
        # No ladder: zero convergence hits, but outcomes still exact.
        assert result.execution.convergence_hits == 0
        reference = run_full_scan(record_golden(micro.counter(3)),
                                  config=OFF)
        assert result.class_outcomes == reference.class_outcomes
        assert result.weighted_counts() == reference.weighted_counts()

    def test_auto_stride_is_dense_for_short_runs(self):
        golden = record_golden(micro.counter(3))
        assert golden.checkpoints.stride == 1
        assert len(golden.checkpoints.digests) == golden.cycles - 1

    def test_auto_stride_decimates_past_the_cap(self):
        """A run longer than MAX_CHECKPOINTS cycles doubles the stride
        and thins the rungs already taken; every surviving rung still
        matches a replayed golden state digest."""
        iterations = MAX_CHECKPOINTS // 5 + 200
        source = f"""\
        .data
v:      .word 0
        .text
start:  li   r3, {iterations}
loop:   lw   r1, v(zero)
        addi r1, r1, 1
        sw   r1, v(zero)
        addi r3, r3, -1
        bnez r3, loop
        halt
"""
        program = assemble(source, name="longloop", ram_size=4)
        golden = record_golden(program)
        ladder = golden.checkpoints
        assert golden.cycles > MAX_CHECKPOINTS
        assert ladder.stride == 2
        assert len(ladder.digests) <= MAX_CHECKPOINTS
        # Spot-check rungs against a fresh replay.
        for index in (0, len(ladder.digests) // 2,
                      len(ladder.digests) - 1):
            cycle = (index + 1) * ladder.stride
            machine = Machine(program)
            machine.run_to_cycle(cycle)
            assert machine.state_digest() == ladder.digests[index], index

    def test_lookup_is_injective(self):
        golden = record_golden(micro.memcopy(4))
        ladder = golden.checkpoints
        assert len(ladder.lookup()) == len(ladder.digests)


class TestMaskedProbe:
    def test_unobservable_probe_agrees_with_criticality(self):
        """The masked-probe helper is exactly a criticality query one
        cycle past convergence — spot-check it against the slice."""
        from repro.faultspace import backward_slice, get_domain
        golden = record_golden(hi.baseline())
        domain = get_domain("memory")
        executor = ExperimentExecutor(golden, domain=domain)
        crit = backward_slice(golden)
        space = domain.fault_space(golden)
        for slot in (1, golden.cycles // 2):
            for coordinate in domain.slot_coordinates(space, slot):
                expected = not domain.cell_critical(
                    crit, domain.coordinate(
                        slot + 1, domain.coordinate_axis(coordinate),
                        coordinate.bit))
                assert executor._cell_unobservable_after(
                    coordinate, slot) == expected
