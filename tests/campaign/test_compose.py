"""Compositional result store: warm campaigns equal cold ones bit for bit.

The section store's contract is *composition soundness*: results
composed from cached sections are indistinguishable from re-executed
ones — same outcome dicts, same records, same journal rows, same CSV
bytes — across fault domains, execution engines, serial/parallel/dist
runners and full-scan/sampling styles.  These tests also pin the store's
schema-migration behaviour (v1 journals open losslessly; newer or
corrupt version stamps degrade with a clear error).
"""

import sqlite3

import pytest

from repro.campaign import (
    ExecutorConfig,
    ExperimentJournal,
    JournalError,
    export_class_results_csv,
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.campaign.journal import SCHEMA_VERSION
from repro.faultspace import build_section_map
from repro.isa.assembler import assemble
from repro.programs import micro

SECTION_TABLES = ("section_results", "campaign_sections", "sections",
                  "summaries")


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.counter(3))


def _experiments(result) -> int:
    """Total experiments of a full scan, summed per live class (the
    per-class count is domain-dependent: 8 bits for memory, one grouped
    representative for pc, ...)."""
    return sum(result.domain.experiment_count(interval)
               for interval in result.partition.live_classes())


class TestWarmEqualsCold:
    @pytest.mark.parametrize(
        "domain", ["memory", "register", "burst2", "stuck", "pc"])
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_full_scan_composes_bit_for_bit(self, tmp_path, golden,
                                            domain, jobs):
        journal = tmp_path / "journal.sqlite"
        cold = run_full_scan(golden, domain=domain, jobs=jobs,
                             journal=journal, keep_records=True)
        warm = run_full_scan(golden, domain=domain, jobs=jobs,
                             journal=journal, resume=False,
                             keep_records=True)
        assert warm == cold
        assert warm.execution.executed == 0
        assert warm.execution.composed_hits == _experiments(cold)

    @pytest.mark.parametrize("engine", ["compiled", "batch", "interp"])
    def test_store_is_engine_independent(self, tmp_path, golden,
                                         engine):
        """A store written by the compiled engine composes campaigns run
        by any engine — fingerprints never mention the engine because
        all engines are outcome- and end-cycle-identical."""
        journal = tmp_path / "journal.sqlite"
        cold = run_full_scan(golden, journal=journal, keep_records=True,
                             config=ExecutorConfig(engine="compiled"))
        warm = run_full_scan(golden, journal=journal, resume=False,
                             keep_records=True,
                             config=ExecutorConfig(engine=engine))
        assert warm == cold
        assert warm.execution.executed == 0
        assert warm.execution.composed_hits > 0

    def test_composed_csv_export_is_byte_identical(self, tmp_path,
                                                   golden):
        journal = tmp_path / "journal.sqlite"
        cold = run_full_scan(golden, journal=journal)
        warm = run_full_scan(golden, journal=journal, resume=False)
        cold_csv = tmp_path / "cold.csv"
        warm_csv = tmp_path / "warm.csv"
        export_class_results_csv(cold, cold_csv)
        export_class_results_csv(warm, warm_csv)
        assert warm_csv.read_bytes() == cold_csv.read_bytes()

    def test_composed_campaign_journal_rows_match(self, tmp_path,
                                                  golden):
        """The warm campaign re-journals every class it composed, so
        its journal rows equal the cold campaign's."""
        journal = tmp_path / "journal.sqlite"
        run_full_scan(golden, journal=journal)
        run_full_scan(golden, journal=journal, resume=False)
        conn = sqlite3.connect(journal)
        campaigns = [row[0] for row in conn.execute(
            "SELECT id FROM campaigns ORDER BY id")]
        assert len(campaigns) == 1  # same identity: cleared, then refilled
        rows = conn.execute(
            "SELECT COUNT(*) FROM class_results").fetchone()[0]
        conn.close()
        assert rows > 0

    def test_sampling_composes_from_full_scan_store(self, tmp_path,
                                                    golden):
        """Sampled campaigns share the store with full scans: a warm
        sampling run composes every sampled experiment the scan already
        executed."""
        journal = tmp_path / "journal.sqlite"
        scan = run_full_scan(golden, journal=journal)
        reference = run_sampling(golden, 30, seed=7)
        warm = run_sampling(golden, 30, seed=7, journal=journal)
        assert warm == reference
        assert warm.execution.composed_hits > 0
        assert warm.execution.composed_hits \
            == warm.experiments_conducted
        del scan

    def test_dist_scan_composes_from_serial_store(self, tmp_path,
                                                  golden):
        from repro.campaign.dist import run_distributed_scan

        journal = tmp_path / "journal.sqlite"
        cold = run_full_scan(golden, journal=journal, keep_records=True)
        warm = run_distributed_scan(golden, workers=2, journal=journal,
                                    resume=False, keep_records=True)
        assert warm == cold
        assert warm.execution.executed == 0
        assert warm.execution.composed_hits == _experiments(cold)

    def test_brute_force_ignores_the_store(self, tmp_path, golden):
        """Brute force validates the pruning against ground truth;
        composing it from pruned-campaign results would be circular."""
        journal = tmp_path / "journal.sqlite"
        run_full_scan(golden, journal=journal)
        brute = run_brute_force(golden)
        scan = run_full_scan(golden, journal=journal, resume=False)
        for coord, outcome in brute.outcomes.items():
            assert scan.outcome_of(coord) == outcome


class TestCrossProgramComposition:
    def test_only_the_changed_section_re_executes(self, tmp_path):
        """Mutate the entry block (commutative operand swap): the
        variant's campaign composes every class owned by the unchanged
        sections and re-executes exactly the first section's classes."""
        template = """\
        .data
count:  .word 0
        .text
start:  add  r4, {a}, {b}
loop:   lw   r1, count(zero)
        addi r1, r1, 1
        sw   r1, count(zero)
        addi r4, r4, 1
        slti r2, r4, 3
        bnez r2, loop
        lw   r1, count(zero)
        out  r1
        halt
"""
        golden_a = record_golden(assemble(
            template.format(a="r5", b="r6"), name="swap-a", ram_size=4))
        golden_b = record_golden(assemble(
            template.format(a="r6", b="r5"), name="swap-b", ram_size=4))
        journal = tmp_path / "journal.sqlite"
        run_full_scan(golden_a, journal=journal)
        reference = run_full_scan(golden_b, keep_records=True)
        warm = run_full_scan(golden_b, journal=journal,
                             keep_records=True)
        assert warm == reference
        first = build_section_map(golden_b).sections[0]
        changed = [interval
                   for interval in warm.partition.live_classes()
                   if interval.injection_slot <= first.last_slot]
        assert warm.execution.executed == len(changed)
        assert warm.execution.resumed \
            == warm.execution.total_units - len(changed)
        assert warm.execution.composed_hits \
            == warm.execution.resumed * warm.domain.bits


class TestSchemaMigration:
    def test_v1_journal_migrates_without_data_loss(self, tmp_path,
                                                   golden):
        """A journal written before the section store existed (schema
        v1) opens via additive migration: its campaign rows survive and
        the campaign resumes without executing anything."""
        journal = tmp_path / "journal.sqlite"
        cold = run_full_scan(golden, journal=journal, keep_records=True)
        conn = sqlite3.connect(journal)
        for table in SECTION_TABLES:
            conn.execute(f"DROP TABLE {table}")
        conn.execute("UPDATE meta SET value = '1' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        resumed = run_full_scan(golden, journal=journal,
                                keep_records=True)
        assert resumed == cold
        assert resumed.execution.executed == 0
        with ExperimentJournal(journal) as handle:
            assert handle.schema_version() == SCHEMA_VERSION

    def test_newer_schema_is_rejected_with_clear_error(self, tmp_path,
                                                       golden):
        journal = tmp_path / "journal.sqlite"
        run_full_scan(golden, journal=journal)
        conn = sqlite3.connect(journal)
        conn.execute("UPDATE meta SET value = '999' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(JournalError, match="schema version"):
            run_full_scan(golden, journal=journal)

    def test_unreadable_version_is_rejected(self, tmp_path, golden):
        journal = tmp_path / "journal.sqlite"
        run_full_scan(golden, journal=journal)
        conn = sqlite3.connect(journal)
        conn.execute("UPDATE meta SET value = 'not-a-number' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(JournalError, match="schema version"):
            run_full_scan(golden, journal=journal)


class TestStoreMaintenance:
    def test_gc_drops_only_orphaned_sections(self, tmp_path, golden):
        journal = tmp_path / "journal.sqlite"
        run_full_scan(golden, journal=journal)
        with ExperimentJournal(journal) as handle:
            assert handle.gc_sections() == 0  # all linked
            before = len(handle.sections())
            assert before > 0
            # Sever the links (what dropping a campaign would do) and
            # the sections become collectable.
            handle._conn.execute("DELETE FROM campaign_sections")
            handle._conn.commit()
            assert handle.gc_sections() == before
            assert handle.sections() == []
            assert handle.size_report()["section_results"] == 0
