"""Differential crash/kill-and-resume tests.

The journal contract is that a resumed campaign produces a result
*bit-for-bit identical* to an uninterrupted one — same outcome dicts,
same record lists, same sample sequences, same CSV export.  These tests
interrupt campaigns at every layer the real world does:

* mid-campaign ``KeyboardInterrupt``-style aborts in the serial runner
  (simulated by a progress callback that raises),
* worker processes killed outright (via the ``REPRO_CHAOS`` hook, which
  makes a worker ``os._exit`` mid-shard like the OOM killer would),
* wedged workers that never return (classified as wall-clock timeouts),

and then assert the resumed result equals the uninterrupted baseline,
for both fault domains and across serial and parallel (jobs ∈ {1, 2, 4})
engines.
"""

import json

import pytest

from repro.campaign import (
    ExperimentJournal,
    Outcome,
    RetryPolicy,
    export_class_results_csv,
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.programs import hi, micro

JOBS = [1, 2, 4]


class Interrupt(Exception):
    """Stands in for the user's ^C / the scheduler's SIGKILL."""


def interrupt_after(n: int):
    """A progress callback that dies once ``n`` units completed."""

    def callback(done: int, total: int) -> None:
        if done >= n:
            raise Interrupt

    return callback


@pytest.fixture(scope="module")
def memory_golden():
    return record_golden(micro.memcopy(6))


@pytest.fixture(scope="module")
def register_golden():
    return record_golden(hi.baseline())


@pytest.fixture(scope="module")
def memory_baseline(memory_golden):
    return run_full_scan(memory_golden, keep_records=True)


@pytest.fixture(scope="module")
def register_baseline(register_golden):
    return run_full_scan(register_golden, keep_records=True,
                         domain="register")


def _golden_and_baseline(domain, memory_golden, memory_baseline,
                         register_golden, register_baseline):
    if domain == "memory":
        return memory_golden, memory_baseline
    return register_golden, register_baseline


class TestFullScanResume:
    @pytest.mark.parametrize("domain", ["memory", "register"])
    @pytest.mark.parametrize("jobs", [None] + JOBS)
    def test_interrupted_scan_resumes_bit_for_bit(
            self, domain, jobs, tmp_path, memory_golden, memory_baseline,
            register_golden, register_baseline):
        """Kill a serial journaled scan after 3 classes; finish it with
        every engine; the merged result must equal the uninterrupted one."""
        golden, baseline = _golden_and_baseline(
            domain, memory_golden, memory_baseline, register_golden,
            register_baseline)
        journal = tmp_path / "journal.sqlite"
        with pytest.raises(Interrupt):
            run_full_scan(golden, domain=domain, journal=journal,
                          keep_records=True, progress=interrupt_after(3))
        resumed = run_full_scan(golden, domain=domain, journal=journal,
                                keep_records=True, jobs=jobs)
        assert resumed == baseline
        assert resumed.execution.resumed == 3
        assert resumed.execution.executed \
            == resumed.execution.total_units - 3
        assert resumed.execution.complete

    def test_resumed_csv_export_is_byte_identical(
            self, tmp_path, memory_golden, memory_baseline):
        journal = tmp_path / "journal.sqlite"
        with pytest.raises(Interrupt):
            run_full_scan(memory_golden, journal=journal,
                          progress=interrupt_after(4))
        resumed = run_full_scan(memory_golden, journal=journal, jobs=2)
        baseline_csv = tmp_path / "baseline.csv"
        resumed_csv = tmp_path / "resumed.csv"
        export_class_results_csv(memory_baseline, baseline_csv)
        export_class_results_csv(resumed, resumed_csv)
        assert resumed_csv.read_bytes() == baseline_csv.read_bytes()

    def test_complete_campaign_resumes_without_executing(
            self, tmp_path, memory_golden, memory_baseline):
        journal = tmp_path / "journal.sqlite"
        run_full_scan(memory_golden, journal=journal)
        again = run_full_scan(memory_golden, journal=journal,
                              keep_records=True)
        assert again == memory_baseline
        assert again.execution.executed == 0
        assert again.execution.resumed == again.execution.total_units

    def test_resume_false_discards_the_journal(self, tmp_path,
                                               memory_golden):
        """resume=False drops the campaign's own rows, but the shared
        section store survives the clear, so the rerun composes its
        results instead of re-executing them (bit-for-bit equal)."""
        journal = tmp_path / "journal.sqlite"
        baseline = run_full_scan(memory_golden, journal=journal)
        fresh = run_full_scan(memory_golden, journal=journal,
                              resume=False)
        assert fresh == baseline
        assert fresh.execution.executed == 0
        assert fresh.execution.composed_hits > 0
        assert fresh.execution.resumed == fresh.execution.total_units

    def test_fresh_journal_file_executes_everything(self, tmp_path,
                                                    memory_golden):
        journal = tmp_path / "journal.sqlite"
        run_full_scan(memory_golden, journal=journal)
        cold = run_full_scan(memory_golden,
                             journal=tmp_path / "other.sqlite")
        assert cold.execution.resumed == 0
        assert cold.execution.composed_hits == 0
        assert cold.execution.executed == cold.execution.total_units

    def test_journal_survives_cross_engine_resume(
            self, tmp_path, memory_golden, memory_baseline):
        """A campaign journaled by the parallel engine finishes serially
        (and vice versa) — the journal key is engine-independent."""
        journal = tmp_path / "journal.sqlite"
        with pytest.raises(Interrupt):
            run_full_scan(memory_golden, journal=journal, jobs=2,
                          progress=interrupt_after(2))
        resumed = run_full_scan(memory_golden, journal=journal,
                                keep_records=True)
        assert resumed == memory_baseline
        assert resumed.execution.resumed >= 2


class TestBruteForceResume:
    @pytest.mark.parametrize("domain", ["memory", "register"])
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_interrupted_brute_force_resumes_bit_for_bit(
            self, domain, jobs, tmp_path, register_golden):
        golden = register_golden  # Δt=8: brute force stays tiny
        baseline = run_brute_force(golden, domain=domain)
        journal = tmp_path / "journal.sqlite"
        with pytest.raises(Interrupt):
            run_brute_force(golden, domain=domain, journal=journal,
                            progress=interrupt_after(4))
        resumed = run_brute_force(golden, domain=domain, journal=journal,
                                  jobs=jobs)
        assert resumed == baseline
        assert resumed.execution.resumed == 4
        assert resumed.execution.complete


class TestSamplingResume:
    @pytest.mark.parametrize("jobs", [None] + JOBS)
    def test_interrupted_sampling_resumes_bit_for_bit(
            self, jobs, tmp_path, memory_golden):
        baseline = run_sampling(memory_golden, 40, seed=7)
        journal = tmp_path / "journal.sqlite"
        with pytest.raises(Interrupt):
            run_sampling(memory_golden, 40, seed=7, journal=journal,
                         progress=interrupt_after(5))
        resumed = run_sampling(memory_golden, 40, seed=7,
                               journal=journal, jobs=jobs)
        assert resumed == baseline
        assert resumed.samples == baseline.samples
        assert resumed.experiments_conducted \
            == baseline.experiments_conducted
        assert resumed.execution.resumed == 5

    def test_register_sampling_resumes(self, tmp_path, register_golden):
        baseline = run_sampling(register_golden, 30, seed=3,
                                domain="register")
        journal = tmp_path / "journal.sqlite"
        with pytest.raises(Interrupt):
            run_sampling(register_golden, 30, seed=3, domain="register",
                         journal=journal, progress=interrupt_after(1))
        resumed = run_sampling(register_golden, 30, seed=3,
                               domain="register", journal=journal, jobs=2)
        assert resumed == baseline
        assert resumed.samples == baseline.samples


class TestWorkerDeath:
    """Simulated worker kills via the REPRO_CHAOS hook."""

    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_dead_worker_is_retried_to_an_identical_result(
            self, domain, monkeypatch, memory_golden, memory_baseline,
            register_golden, register_baseline):
        golden, baseline = _golden_and_baseline(
            domain, memory_golden, memory_baseline, register_golden,
            register_baseline)
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            {"die": [[0, 0]], "die_delay": 0.2}))
        result = run_full_scan(golden, domain=domain, jobs=2,
                               keep_records=True,
                               policy=RetryPolicy(backoff=0.05))
        assert result == baseline
        assert result.execution.shard_retries >= 1
        assert result.execution.complete

    def test_exhausted_retries_degrade_to_partial_result(
            self, monkeypatch, memory_golden, memory_baseline):
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            {"die": [[0, 0], [0, 1]], "die_delay": 0.2}))
        result = run_full_scan(memory_golden, jobs=2,
                               policy=RetryPolicy(max_retries=1,
                                                  backoff=0.05))
        execution = result.execution
        assert not execution.complete
        assert execution.failed_shards == 1
        assert execution.missing
        assert 0.0 < execution.completeness < 1.0
        # The surviving shard's classes are still present and correct.
        for key, outcomes in result.class_outcomes.items():
            assert outcomes == memory_baseline.class_outcomes[key]
        # Weighted counts cover only the completed part of the space.
        assert sum(result.weighted_counts().values()) \
            < result.fault_space_size

    def test_degraded_campaign_resumes_to_completion(
            self, monkeypatch, tmp_path, memory_golden, memory_baseline):
        """Journal + worker death + exhausted retries, then a clean rerun:
        the rerun resumes the survivors and equals the uninterrupted run."""
        journal = tmp_path / "journal.sqlite"
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            {"die": [[0, 0], [0, 1]], "die_delay": 0.2}))
        partial = run_full_scan(memory_golden, jobs=2, journal=journal,
                                policy=RetryPolicy(max_retries=1,
                                                   backoff=0.05))
        assert not partial.execution.complete
        monkeypatch.delenv("REPRO_CHAOS")
        resumed = run_full_scan(memory_golden, jobs=2, journal=journal,
                                keep_records=True)
        assert resumed == memory_baseline
        assert resumed.execution.complete
        assert resumed.execution.resumed \
            == partial.execution.total_units - len(partial.execution.missing)

    def test_sampling_survives_worker_death(self, monkeypatch,
                                            memory_golden):
        baseline = run_sampling(memory_golden, 40, seed=7)
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            {"die": [[0, 0]], "die_delay": 0.2}))
        result = run_sampling(memory_golden, 40, seed=7, jobs=2,
                              policy=RetryPolicy(backoff=0.05))
        assert result == baseline
        assert result.execution.shard_retries >= 1


class TestHungWorker:
    def test_hung_shard_is_classified_timeout_not_a_stall(
            self, monkeypatch, memory_golden):
        """A worker that never returns must not hang the campaign: its
        shard's experiments come back as Outcome.TIMEOUT."""
        monkeypatch.setenv("REPRO_CHAOS",
                           json.dumps({"hang": [[0, 0]]}))
        result = run_full_scan(
            memory_golden, jobs=2,
            policy=RetryPolicy(shard_timeout=1.0, poll_interval=0.05))
        execution = result.execution
        assert execution.timed_out_shards == 1
        assert execution.synthesized_timeouts > 0
        assert execution.complete  # timeouts are results, not gaps
        assert any(outcome is Outcome.TIMEOUT
                   for outcomes in result.class_outcomes.values()
                   for outcome in outcomes)
        # Every class still has a full outcome tuple.
        assert len(result.class_outcomes) == execution.total_units

    def test_journaled_timeouts_are_not_rerun(self, monkeypatch,
                                              tmp_path, memory_golden):
        journal = tmp_path / "journal.sqlite"
        monkeypatch.setenv("REPRO_CHAOS",
                           json.dumps({"hang": [[0, 0]]}))
        first = run_full_scan(
            memory_golden, jobs=2, journal=journal,
            policy=RetryPolicy(shard_timeout=1.0, poll_interval=0.05))
        monkeypatch.delenv("REPRO_CHAOS")
        second = run_full_scan(memory_golden, jobs=2, journal=journal)
        assert second.execution.executed == 0
        assert second.class_outcomes == first.class_outcomes


class TestSigintMidClass:
    """^C in the middle of a class — between two of its per-bit
    experiments — must leave the journal with whole classes only."""

    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_interrupt_between_bits_leaves_no_torn_class(
            self, domain, tmp_path, memory_golden, memory_baseline,
            register_golden, register_baseline):
        import sqlite3

        from repro.campaign import ExecutorConfig
        from repro.faultspace.domain import get_domain

        golden, baseline = _golden_and_baseline(
            domain, memory_golden, memory_baseline, register_golden,
            register_baseline)
        dom = get_domain(domain)
        journal = tmp_path / "journal.sqlite"
        executor = ExecutorConfig(domain=domain).build(golden)
        real_run = executor.run
        calls = 0
        # Die three experiments into the third class: the journal must
        # then hold classes 1 and 2 in full and nothing of class 3.
        limit = 2 * dom.bits + 3

        def run_then_sigint(coordinate):
            nonlocal calls
            calls += 1
            if calls > limit:
                raise KeyboardInterrupt
            return real_run(coordinate)

        executor.run = run_then_sigint
        with pytest.raises(KeyboardInterrupt):
            run_full_scan(golden, domain=domain, executor=executor,
                          journal=journal)
        with sqlite3.connect(journal) as conn:
            counts = conn.execute(
                "SELECT COUNT(*) FROM class_results "
                "GROUP BY campaign_id, axis, first_slot").fetchall()
        assert len(counts) == 2  # the torn third class was not journaled
        assert all(count == (dom.bits,) for count in counts)
        resumed = run_full_scan(golden, domain=domain, journal=journal,
                                keep_records=True)
        assert resumed == baseline
        assert resumed.records == baseline.records
        assert resumed.execution.resumed == 2
        assert resumed.execution.complete


class TestHeartbeat:
    def test_progress_heartbeats_while_a_shard_runs_long(
            self, monkeypatch, memory_golden):
        """During an idle wait the progress callback is re-invoked with
        unchanged counts, so a UI can prove the campaign is alive."""
        calls = []
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            {"hang": [[0, 0]]}))
        run_full_scan(
            memory_golden, jobs=2, progress=lambda d, t: calls.append(d),
            policy=RetryPolicy(shard_timeout=1.0, poll_interval=0.05,
                               heartbeat=0.1))
        # More progress invocations than work units -> heartbeats fired.
        assert len(calls) > len(set(calls))
