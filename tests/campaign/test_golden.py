"""Tests for golden-run recording."""

import pytest

from repro.campaign import GoldenRunError, record_golden
from repro.isa import assemble


class TestRecordGolden:
    def test_records_output_cycles_and_trace(self):
        golden = record_golden(assemble("""
            .data
v:      .byte 0
            .text
start:  li   r1, 'A'
        sb   r1, v(zero)
        lbu  r2, v(zero)
        out  r2
        halt
""", ram_size=1))
        assert golden.output == b"A"
        assert golden.cycles == 5
        assert golden.trace.total_slots == 5
        assert golden.fault_space.size == 5 * 8

    def test_partition_is_validated(self):
        golden = record_golden(assemble(
            ".text\nstart: li r1, 1\n sb r1, 0(zero)\n lbu r2, 0(zero)\n"
            " halt", ram_size=2))
        partition = golden.partition()
        assert partition.total_weight == golden.fault_space.size

    def test_trapping_program_rejected(self):
        program = assemble(".text\nstart: lw r1, 999(zero)\n halt",
                           ram_size=8)
        with pytest.raises(GoldenRunError, match="trapped"):
            record_golden(program)

    def test_nonterminating_program_rejected(self):
        program = assemble(".text\nstart: j start")
        with pytest.raises(GoldenRunError, match="exceeded"):
            record_golden(program, cycle_limit=1000)

    def test_spurious_detection_rejected(self):
        program = assemble(".text\nstart: detect 1\n halt")
        with pytest.raises(GoldenRunError, match="detections"):
            record_golden(program)

    def test_golden_run_is_reproducible(self):
        program = assemble(
            ".text\nstart: li r1, 'x'\n out r1\n halt")
        first = record_golden(program)
        second = record_golden(program)
        assert first.output == second.output
        assert first.cycles == second.cycles
