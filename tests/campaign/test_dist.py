"""Distributed campaign fabric tests: equality, leases, chaos.

The contract mirrors the journal's: a distributed scan — any worker
count, any interleaving, any amount of node loss short of exhausting the
retry budget — produces a result *bit-for-bit identical* to the serial
runner.  These tests drive the real TCP stack (coordinator on a thread,
workers on threads or subprocesses over loopback) and inject the
failures multi-host campaigns actually see: killed workers, dropped and
duplicated deliveries, a coordinator restart mid-campaign, and shards
lost for good.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign import (
    RetryPolicy,
    export_class_results_csv,
    record_golden,
    run_full_scan,
)
from repro.campaign.dist import (
    DistCoordinator,
    DistWorker,
    FrameStream,
    LeaseBoard,
    PROTOCOL_VERSION,
    ProtocolError,
    WorkerRejected,
    decode_frame,
    encode_frame,
)
from repro.campaign.dist.coordinator import serve_in_thread
from repro.programs import hi, micro, sync2

#: Snappy failure detection for loopback tests.
POLICY = RetryPolicy(heartbeat=0.3, poll_interval=0.02, backoff=0.05)


@pytest.fixture(scope="module")
def memory_golden():
    return record_golden(micro.memcopy(6))


@pytest.fixture(scope="module")
def register_golden():
    return record_golden(hi.baseline())


@pytest.fixture(scope="module")
def memory_baseline(memory_golden):
    return run_full_scan(memory_golden, keep_records=True)


@pytest.fixture(scope="module")
def register_baseline(register_golden):
    return run_full_scan(register_golden, keep_records=True,
                         domain="register")


def _server_socket():
    return socket.create_server(("127.0.0.1", 0))


def _start_worker(port: int, name: str, chaos=None, **kw):
    """Run a DistWorker on a daemon thread, capturing its exception."""
    kw.setdefault("reconnect_delay", 0.05)
    kw.setdefault("max_reconnect_delay", 0.3)
    worker = DistWorker("127.0.0.1", port, name=name, chaos=chaos, **kw)
    errors: list = []

    def target():
        try:
            worker.run()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            errors.append(exc)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return worker, thread, errors


def run_dist(golden, *, workers=2, worker_chaos=None, worker_kw=None,
             domain="memory", policy=POLICY, **coordinator_kw):
    """One distributed scan over loopback; returns its CampaignResult."""
    sock = _server_socket()
    port = sock.getsockname()[1]
    coordinator_kw.setdefault("shards", 4)
    coordinator_kw.setdefault("keep_records", True)
    coordinator = DistCoordinator(golden, sock=sock, domain=domain,
                                  policy=policy, **coordinator_kw)
    thread = serve_in_thread(coordinator)
    chaos_by_worker = worker_chaos or [None] * workers
    spawned = [_start_worker(port, f"w{index}", chaos=chaos,
                             **(worker_kw or {}))
               for index, chaos in enumerate(chaos_by_worker)]
    result = thread.join_result(120)
    for _, worker_thread, _ in spawned:
        worker_thread.join(10)
    return result, coordinator, spawned


class TestProtocol:
    def test_frame_round_trip(self):
        message = {"type": "result", "rows": [[0, "sdc", 12, ""]]}
        assert decode_frame(encode_frame(message)[4:]) == message

    def test_undecodable_payload_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(b"\xff\xfe not json")

    def test_untyped_message_rejected(self):
        with pytest.raises(ProtocolError, match="typed"):
            decode_frame(json.dumps([1, 2, 3]).encode())
        with pytest.raises(ProtocolError, match="typed"):
            decode_frame(json.dumps({"no_type": 1}).encode())

    def test_stream_read_and_partial_poll(self):
        left, right = socket.socketpair()
        try:
            a, b = FrameStream(left), FrameStream(right)
            a.send({"type": "hello", "n": 1})
            a.send({"type": "hello", "n": 2})
            assert b.read(timeout=1.0)["n"] == 1
            assert b.poll()["n"] == 2
            assert b.poll() is None  # nothing buffered, does not block
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none_mid_frame_is_error(self):
        left, right = socket.socketpair()
        stream = FrameStream(right)
        left.close()
        assert stream.read(timeout=1.0) is None
        left2, right2 = socket.socketpair()
        stream2 = FrameStream(right2)
        left2.sendall(encode_frame({"type": "x"})[:5])  # truncated
        left2.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            stream2.read(timeout=1.0)
        right2.close()

    def test_absurd_length_rejected(self):
        left, right = socket.socketpair()
        stream = FrameStream(right)
        left.sendall((1 << 30).to_bytes(4, "big"))
        with pytest.raises(ProtocolError, match="limit"):
            stream.read(timeout=1.0)
        left.close()
        right.close()


class TestLeaseBoard:
    def _board(self, *, max_retries=2, shards=2):
        board = LeaseBoard(
            policy=RetryPolicy(max_retries=max_retries, backoff=0.1,
                               shard_timeout=10.0),
            key_costs={(0, 1): 100, (0, 2): 100, (1, 1): 100, (1, 2): 100})
        keys = [[(0, 1), (0, 2)], [(1, 1), (1, 2)]]
        for index in range(shards):
            board.add_shard(index, keys[index], list(keys[index]))
        return board

    def test_grants_then_waits_then_done(self):
        board = self._board()
        lease_a = board.acquire("a", now=0.0)
        lease_b = board.acquire("b", now=0.0)
        assert lease_a.shard == 0 and lease_b.shard == 1
        # Everything leased: a third worker is told to wait.
        assert isinstance(board.acquire("c", now=0.0), float)
        for key in [(0, 1), (0, 2), (1, 1), (1, 2)]:
            board.progress(0 if key[0] == 0 else 1, key, now=1.0)
        assert board.done()
        assert board.acquire("c", now=2.0) is None

    def test_progress_deduplicates(self):
        board = self._board()
        board.acquire("a", now=0.0)
        assert board.progress(0, (0, 1), now=1.0) is True
        assert board.progress(0, (0, 1), now=1.0) is False

    def test_progress_extends_the_deadline(self):
        board = self._board()
        lease = board.acquire("a", now=0.0)
        before = lease.deadline
        board.progress(0, (0, 1), now=5.0)
        assert board.shards()[0].lease.deadline > before

    def test_expiry_requeues_with_backoff_then_fails(self):
        board = self._board(max_retries=1, shards=1)
        board.acquire("a", now=0.0)
        assert board.expire(now=100.0) == [0]
        assert board.retries == 1
        # Embargoed: immediately re-acquiring yields a wait, not a grant.
        assert isinstance(board.acquire("b", now=100.0), float)
        lease = board.acquire("b", now=101.0)
        assert lease.shard == 0
        board.expire(now=300.0)
        assert board.failed_shards == 1
        assert board.failed_keys() == [(0, 1), (0, 2)]
        # Permanently lost work is terminal state, not a hang.
        assert board.done()
        assert board.acquire("c", now=301.0) is None

    def test_disconnect_releases_only_that_workers_leases(self):
        board = self._board()
        board.acquire("a", now=0.0)
        board.acquire("b", now=0.0)
        assert board.release_worker("a", now=1.0) == [0]
        assert board.shards()[1].lease.worker == "b"

    def test_late_result_after_expiry_still_counts(self):
        board = self._board()
        board.acquire("a", now=0.0)
        board.expire(now=100.0)
        assert board.progress(0, (0, 1), now=101.0) is True
        lease = board.acquire("b", now=102.0)
        assert lease.keys == ((0, 2),)  # only the unfinished key

    def test_lease_done_with_remaining_keys_is_a_failed_attempt(self):
        board = self._board()
        lease = board.acquire("a", now=0.0)
        board.progress(0, (0, 1), now=1.0)
        board.finish(0, lease.lease_id, now=2.0)
        assert board.retries == 1  # (0, 2) was never submitted


class TestDistEquality:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_memory_scan_is_bit_for_bit_serial(
            self, workers, memory_golden, memory_baseline):
        result, coordinator, _ = run_dist(memory_golden, workers=workers)
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.complete
        assert sum(units for _, units in result.execution.workers) \
            == result.execution.executed

    def test_register_scan_is_bit_for_bit_serial(
            self, register_golden, register_baseline):
        result, _, _ = run_dist(register_golden, domain="register")
        assert result == register_baseline
        assert result.records == register_baseline.records

    def test_csv_export_is_byte_identical(self, tmp_path, memory_golden,
                                          memory_baseline):
        result, _, _ = run_dist(memory_golden)
        dist_csv, serial_csv = tmp_path / "d.csv", tmp_path / "s.csv"
        export_class_results_csv(result, dist_csv)
        export_class_results_csv(memory_baseline, serial_csv)
        assert dist_csv.read_bytes() == serial_csv.read_bytes()


class TestDistChaos:
    def test_killed_worker_is_survived(self, memory_golden,
                                       memory_baseline):
        """One worker's socket vanishes mid-shard (exactly what SIGKILL
        looks like from the coordinator) and never comes back; the
        survivor absorbs the re-leased work."""
        result, _, spawned = run_dist(
            memory_golden,
            worker_chaos=[{"drop_after_results": 2}, None],
            worker_kw={"max_reconnects": 0})
        # The chaos worker died for good...
        assert any(errors for _, _, errors in spawned)
        # ...and the campaign still matches the serial ground truth.
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.complete

    def test_dropped_connection_reconnects_and_finishes(
            self, memory_golden, memory_baseline):
        """A worker that loses its TCP connection mid-lease reconnects
        and keeps working; nothing is lost, nothing double-counted."""
        result, _, spawned = run_dist(
            memory_golden, workers=1,
            worker_chaos=[{"drop_after_results": 3}])
        assert not any(errors for _, _, errors in spawned)
        assert result == memory_baseline
        assert result.execution.executed == result.execution.total_units

    def test_duplicate_deliveries_account_exactly_once(
            self, memory_golden, memory_baseline):
        result, _, _ = run_dist(
            memory_golden,
            worker_chaos=[{"duplicate_results": 5}, None])
        assert result == memory_baseline
        assert result.execution.executed == result.execution.total_units
        assert sum(units for _, units in result.execution.workers) \
            == result.execution.total_units

    def test_coordinator_restart_resumes_from_the_journal(
            self, tmp_path, memory_golden, memory_baseline):
        """Crash the coordinator after 4 accepted results; a new one on
        the same port + journal finishes while the worker reconnects."""
        journal = tmp_path / "dist.sqlite"
        sock = _server_socket()
        port = sock.getsockname()[1]
        first = DistCoordinator(memory_golden, sock=sock, shards=4,
                                policy=POLICY, journal=journal,
                                stop_after_results=4)
        thread = serve_in_thread(first)
        _, worker_thread, errors = _start_worker(port, "w0")
        assert thread.join_result(60) is None
        assert first.stopped
        # The worker is now reconnect-looping against a dead port.
        sock2 = socket.create_server(("127.0.0.1", port))
        second = DistCoordinator(memory_golden, sock=sock2, shards=4,
                                 policy=POLICY, journal=journal,
                                 keep_records=True)
        result = serve_in_thread(second).join_result(60)
        worker_thread.join(10)
        assert not errors
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.resumed == 4
        assert result.execution.executed \
            == result.execution.total_units - 4

    def test_lost_forever_shard_degrades_not_hangs(self, memory_golden,
                                                   memory_baseline):
        """With a zero retry budget, a shard whose only attempt dies is
        abandoned: the campaign returns a partial result listing the
        missing classes instead of waiting forever."""
        result, _, _ = run_dist(
            memory_golden,
            worker_chaos=[{"drop_after_results": 1}, None],
            worker_kw={"max_reconnects": 0},
            policy=RetryPolicy(heartbeat=0.3, poll_interval=0.02,
                               backoff=0.05, max_retries=0))
        execution = result.execution
        assert not execution.complete
        assert execution.failed_shards >= 1
        assert execution.missing
        assert 0.0 < execution.completeness < 1.0
        # Everything that was completed matches the ground truth.
        for key, outcomes in result.class_outcomes.items():
            assert outcomes == memory_baseline.class_outcomes[key]

    def test_stale_worker_is_rejected_not_polluting(
            self, monkeypatch, memory_golden, memory_baseline):
        """A worker whose checkout assembles a different binary must be
        refused; a correct worker still completes the campaign."""
        import repro.campaign.dist.worker as worker_mod

        sock = _server_socket()
        port = sock.getsockname()[1]
        coordinator = DistCoordinator(memory_golden, sock=sock, shards=4,
                                      policy=POLICY, keep_records=True)
        thread = serve_in_thread(coordinator)
        real = worker_mod.program_fingerprint
        monkeypatch.setattr(worker_mod, "program_fingerprint",
                            lambda program: "0" * 24)
        stale = DistWorker("127.0.0.1", port, name="stale")
        with pytest.raises(WorkerRejected, match="fingerprint mismatch"):
            stale.run()
        monkeypatch.setattr(worker_mod, "program_fingerprint", real)
        _, worker_thread, errors = _start_worker(port, "fresh")
        result = thread.join_result(60)
        worker_thread.join(10)
        assert not errors
        assert result == memory_baseline
        assert result.execution.workers == (("fresh",
                                             result.execution.executed),)

    def test_protocol_version_mismatch_is_rejected(self, memory_golden):
        sock = _server_socket()
        port = sock.getsockname()[1]
        coordinator = DistCoordinator(memory_golden, sock=sock,
                                      policy=POLICY, stop_after_results=1)
        thread = serve_in_thread(coordinator)
        time.sleep(0.05)
        client = socket.create_connection(("127.0.0.1", port), timeout=5)
        stream = FrameStream(client)
        stream.send({"type": "hello", "version": PROTOCOL_VERSION + 1,
                     "name": "old"})
        reply = stream.read(timeout=5.0)
        assert reply["type"] == "reject"
        assert "version" in reply["reason"]
        client.close()
        # Drain the coordinator so the thread does not linger.  The
        # stop_after_results hook severs the worker, so cap reconnects.
        _, worker_thread, _ = _start_worker(port, "w0", max_reconnects=0)
        thread.join_result(60)
        worker_thread.join(10)


class TestDistJournalInterop:
    def test_dist_journal_resumes_serially(self, tmp_path, memory_golden,
                                           memory_baseline):
        """The fabric journals under the same campaign key as the serial
        and pool engines: a journaled dist scan re-runs as a no-op."""
        journal = tmp_path / "j.sqlite"
        run_dist(memory_golden, journal=journal)
        again = run_full_scan(memory_golden, journal=journal,
                              keep_records=True)
        assert again == memory_baseline
        assert again.execution.executed == 0

    def test_serial_journal_resumes_distributed(
            self, tmp_path, memory_golden, memory_baseline):
        journal = tmp_path / "j.sqlite"

        class Interrupt(Exception):
            pass

        def interrupt(done, total):
            if done >= 3:
                raise Interrupt

        with pytest.raises(Interrupt):
            run_full_scan(memory_golden, journal=journal,
                          progress=interrupt)
        result, _, _ = run_dist(memory_golden, journal=journal)
        assert result == memory_baseline
        assert result.execution.resumed == 3


def _spawn_worker_proc(port: int, name: str, chaos=None):
    """Start ``python -m repro worker`` as a real subprocess."""
    import repro

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    if chaos:
        env["REPRO_DIST_CHAOS"] = json.dumps(chaos)
    else:
        env.pop("REPRO_DIST_CHAOS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--name", name],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestDistSubprocess:
    """Real worker *processes* — node loss means a PID actually dying."""

    def test_worker_process_death_mid_shard(self, memory_golden,
                                            memory_baseline):
        """One subprocess worker os._exit()s mid-shard (the observable
        equivalent of SIGKILL); the survivor finishes the campaign."""
        sock = _server_socket()
        port = sock.getsockname()[1]
        progressed = threading.Event()

        def progress(done, total):
            if done >= 1:
                progressed.set()

        coordinator = DistCoordinator(memory_golden, sock=sock, shards=4,
                                      policy=POLICY, keep_records=True,
                                      progress=progress)
        thread = serve_in_thread(coordinator)
        doomed = _spawn_worker_proc(port, "doomed",
                                    chaos={"die_after_results": 2})
        survivor = None
        try:
            # Let the doomed worker land its first result before the
            # survivor joins, so it reliably reaches its 2nd (fatal) one
            # even when interpreter startup is slow under load.
            assert progressed.wait(60), "doomed worker never made progress"
            survivor = _spawn_worker_proc(port, "survivor")
            result = thread.join_result(120)
        finally:
            for proc in (doomed, survivor):
                if proc is None:
                    continue
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert doomed.returncode == 13  # it really died
        assert survivor.returncode == 0
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.complete

    def test_sigkilled_worker_process(self, memory_golden,
                                      memory_baseline):
        """Deliver an actual SIGKILL once the worker has made progress;
        a replacement worker absorbs the re-leased remainder."""
        sock = _server_socket()
        port = sock.getsockname()[1]
        progressed = threading.Event()

        def progress(done, total):
            if done >= 2:
                progressed.set()

        coordinator = DistCoordinator(memory_golden, sock=sock, shards=4,
                                      policy=POLICY, keep_records=True,
                                      progress=progress)
        thread = serve_in_thread(coordinator)
        victim = _spawn_worker_proc(port, "victim")
        replacement = None
        try:
            assert progressed.wait(60), "victim never made progress"
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
            replacement = _spawn_worker_proc(port, "replacement")
            result = thread.join_result(120)
        finally:
            for proc in (victim, replacement):
                if proc is None:
                    continue
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert victim.returncode == -signal.SIGKILL
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.complete


class TestAcceptanceSync2:
    """The issue's acceptance bar: distributed == serial, bit for bit,
    on the paper's sync2 pair, both domains, with a node killed."""

    @pytest.fixture(scope="class")
    def goldens(self):
        return {"plain": record_golden(sync2.baseline(1)),
                "hardened": record_golden(sync2.hardened(1))}

    @pytest.mark.parametrize("variant", ["plain", "hardened"])
    @pytest.mark.parametrize("domain", ["memory", "register"])
    def test_dist_equals_serial_with_node_loss(self, goldens, variant,
                                               domain, tmp_path):
        golden = goldens[variant]
        serial = run_full_scan(golden, domain=domain, keep_records=True)
        result, _, spawned = run_dist(
            golden, domain=domain,
            worker_chaos=[{"drop_after_results": 2}, None],
            worker_kw={"max_reconnects": 0})
        assert any(errors for _, _, errors in spawned)  # a node died
        assert result == serial
        assert result.records == serial.records
        assert result.execution.complete
        dist_csv, serial_csv = tmp_path / "d.csv", tmp_path / "s.csv"
        export_class_results_csv(result, dist_csv)
        export_class_results_csv(serial, serial_csv)
        assert dist_csv.read_bytes() == serial_csv.read_bytes()

    def test_hardened_restart_and_node_loss_together(self, goldens,
                                                     tmp_path):
        """Worst day in the cluster: a worker dies for good AND the
        coordinator restarts mid-campaign; still bit-for-bit serial."""
        golden = goldens["hardened"]
        serial = run_full_scan(golden, keep_records=True)
        journal = tmp_path / "dist.sqlite"
        sock = _server_socket()
        port = sock.getsockname()[1]
        first = DistCoordinator(golden, sock=sock, shards=4,
                                policy=POLICY, journal=journal,
                                stop_after_results=3)
        thread = serve_in_thread(first)
        _, doomed_thread, doomed_errors = _start_worker(
            port, "doomed", chaos={"drop_after_results": 2},
            max_reconnects=0)
        _, steady_thread, steady_errors = _start_worker(port, "steady")
        assert thread.join_result(120) is None  # simulated crash
        sock2 = socket.create_server(("127.0.0.1", port))
        second = DistCoordinator(golden, sock=sock2, shards=4,
                                 policy=POLICY, journal=journal,
                                 keep_records=True)
        result = serve_in_thread(second).join_result(120)
        doomed_thread.join(10)
        steady_thread.join(10)
        assert not steady_errors
        assert result == serial
        assert result.records == serial.records
        assert result.execution.complete
        # stop_after_results fires on the 3rd accepted result, but a
        # second worker's in-flight submission may land before the stop
        # tears the connections down.
        assert 3 <= result.execution.resumed <= 4
        assert result.execution.executed \
            == result.execution.total_units - result.execution.resumed
