"""Unit tests for the durable experiment journal."""

import sqlite3

import pytest

from repro.campaign import (
    ExecutionReport,
    ExperimentJournal,
    JournalError,
    JournalMismatchError,
    Outcome,
    record_golden,
)
from repro.campaign.journal import canonical_params, open_campaign
from repro.faultspace import MEMORY, REGISTER
from repro.programs import micro


@pytest.fixture(scope="module")
def golden():
    return record_golden(micro.counter(2))


@pytest.fixture()
def journal(tmp_path):
    with ExperimentJournal(tmp_path / "journal.sqlite") as handle:
        yield handle


def _campaign(journal, **overrides):
    spec = dict(fingerprint="abc123", domain="memory", kind="full-scan",
                params={"timeout_cycles": 100, "early_stop": True},
                cycles=42)
    spec.update(overrides)
    return journal.campaign(**spec)


class TestJournalFile:
    def test_same_key_reopens_same_campaign(self, journal):
        first = _campaign(journal)
        second = _campaign(journal)
        assert first.campaign_id == second.campaign_id

    def test_key_components_separate_campaigns(self, journal):
        base = _campaign(journal)
        assert _campaign(journal, fingerprint="other").campaign_id \
            != base.campaign_id
        assert _campaign(journal, domain="register").campaign_id \
            != base.campaign_id
        assert _campaign(journal, kind="sampling").campaign_id \
            != base.campaign_id
        assert _campaign(journal, params={"timeout_cycles": 999,
                                          "early_stop": True}).campaign_id \
            != base.campaign_id

    def test_changed_cycles_is_a_mismatch(self, journal):
        _campaign(journal, cycles=42)
        with pytest.raises(JournalMismatchError, match="Δt"):
            _campaign(journal, cycles=43)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "future.sqlite"
        ExperimentJournal(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(JournalError, match="schema version"):
            ExperimentJournal(path)

    def test_campaigns_listing_counts_progress(self, journal):
        campaign = _campaign(journal)
        campaign.record_class(3, 7, [(0, "sdc", 10, ""),
                                     (1, "no-effect", 12, "")])
        listing = journal.campaigns()
        assert len(listing) == 1
        assert listing[0]["kind"] == "full-scan"
        assert listing[0]["status"] == "running"
        assert listing[0]["journaled_experiments"] == 2

    def test_canonical_params_is_order_insensitive(self):
        assert canonical_params({"a": 1, "b": 2}) \
            == canonical_params({"b": 2, "a": 1})


class TestCampaignJournal:
    def test_class_rows_round_trip(self, journal):
        campaign = _campaign(journal)
        campaign.record_class(5, 2, [(0, "sdc", 30, ""),
                                     (1, "cpu-exception", 31, "BUS")])
        stored = campaign.completed_classes()
        assert stored == {(5, 2): [(0, Outcome.SDC, 30, ""),
                                   (1, Outcome.CPU_EXCEPTION, 31, "BUS")]}

    def test_slot_rows_round_trip(self, journal):
        campaign = _campaign(journal, kind="brute-force")
        campaign.record_slot(4, [(0, 0, "no-effect"), (0, 1, "sdc")])
        assert campaign.completed_slots() == {
            4: [(0, 0, Outcome.NO_EFFECT), (0, 1, Outcome.SDC)]}

    def test_experiment_rows_round_trip(self, journal):
        campaign = _campaign(journal, kind="sampling")
        campaign.record_experiments([(2, 9, 3, "timeout")])
        assert campaign.completed_experiments() == {
            (2, 9, 3): Outcome.TIMEOUT}

    def test_clear_discards_results_and_state(self, journal):
        campaign = _campaign(journal)
        campaign.record_class(1, 1, [(0, "sdc", 5, "")])
        campaign.record_sampler_state(10, "[3,[1,2],null]")
        campaign.mark_complete()
        campaign.clear()
        assert campaign.completed_classes() == {}
        assert campaign.sampler_state() is None
        assert campaign.status == "running"

    def test_mark_complete_sets_status(self, journal):
        campaign = _campaign(journal)
        assert campaign.status == "running"
        campaign.mark_complete()
        assert campaign.status == "complete"

    def test_sampler_state_verified_on_resume(self, journal):
        campaign = _campaign(journal, kind="sampling")
        campaign.verify_sampler_state(10, "[3,[1,2],null]")  # records
        campaign.verify_sampler_state(10, "[3,[1,2],null]")  # matches
        with pytest.raises(JournalMismatchError, match="seed, sampler"):
            campaign.verify_sampler_state(10, "[3,[9,9],null]")
        with pytest.raises(JournalMismatchError):
            campaign.verify_sampler_state(11, "[3,[1,2],null]")


class TestOpenCampaign:
    def test_none_disables_journaling(self, golden):
        assert open_campaign(None, golden, MEMORY, "full-scan", {}) is None

    def test_path_and_instance_open_the_same_campaign(self, golden,
                                                      tmp_path):
        path = tmp_path / "j.sqlite"
        by_path = open_campaign(path, golden, MEMORY, "full-scan", {})
        with ExperimentJournal(path) as journal:
            by_instance = open_campaign(journal, golden, MEMORY,
                                        "full-scan", {})
            assert by_instance.campaign_id == by_path.campaign_id

    def test_domains_do_not_share_campaigns(self, golden, tmp_path):
        with ExperimentJournal(tmp_path / "j.sqlite") as journal:
            memory = open_campaign(journal, golden, MEMORY, "full-scan", {})
            register = open_campaign(journal, golden, REGISTER,
                                     "full-scan", {})
            assert memory.campaign_id != register.campaign_id


class TestExecutionReport:
    def test_complete_report(self):
        report = ExecutionReport(total_units=10, executed=6, resumed=4)
        assert report.complete
        assert report.completeness == 1.0

    def test_degraded_report(self):
        report = ExecutionReport(total_units=10, executed=5,
                                 failed_shards=1,
                                 missing=((0, 1), (0, 2)))
        assert not report.complete
        assert report.completeness == pytest.approx(0.8)

    def test_empty_report_is_trivially_complete(self):
        assert ExecutionReport().complete
        assert ExecutionReport().completeness == 1.0


class TestJournalDurability:
    """The satellite hardening: WAL mode, integrity checking, and the
    idempotent-merge / lease state the distributed fabric relies on."""

    def test_file_journal_runs_in_wal_mode(self, tmp_path):
        path = tmp_path / "journal.sqlite"
        with ExperimentJournal(path) as handle:
            mode = handle._conn.execute(
                "PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"

    def test_garbage_file_raises_journal_error_naming_the_path(
            self, tmp_path):
        path = tmp_path / "journal.sqlite"
        path.write_bytes(b"this was never a database" * 100)
        with pytest.raises(JournalError, match="journal.sqlite"):
            ExperimentJournal(path)

    def test_corrupted_database_fails_fast_not_mid_campaign(
            self, tmp_path):
        """Flipping bytes inside a real journal must surface at open
        (quick_check or the schema read), never as a silent bad read."""
        path = tmp_path / "journal.sqlite"
        with ExperimentJournal(path) as handle:
            campaign = _campaign(handle)
            for axis in range(64):
                campaign.record_class(
                    axis, 1, [(bit, "sdc", 30, "") for bit in range(8)])
        raw = bytearray(path.read_bytes())
        assert len(raw) > 8192
        # Stomp a whole page's header: structural corruption that
        # PRAGMA quick_check is guaranteed to flag.
        raw[4096:4296] = b"\xde\xad" * 100
        path.write_bytes(bytes(raw))
        with pytest.raises((JournalError, sqlite3.DatabaseError)):
            with ExperimentJournal(path) as handle:
                _campaign(handle).completed_classes()

    def test_merge_class_is_first_wins_idempotent(self, journal):
        campaign = _campaign(journal)
        rows = [(0, "sdc", 30, ""), (1, "no-effect", 42, "")]
        assert campaign.merge_class(5, 2, rows) is True
        assert campaign.merge_class(5, 2, rows) is False
        assert campaign.merge_class(
            5, 2, [(0, "timeout", 1, "")]) is False  # late duplicate
        stored = campaign.completed_classes()
        assert stored[(5, 2)] == [(0, Outcome.SDC, 30, ""),
                                  (1, Outcome.NO_EFFECT, 42, "")]

    def test_lease_state_round_trips_and_clears(self, journal):
        campaign = _campaign(journal)
        campaign.record_lease(0, '[[0,1]]', attempts=2, status="pending",
                              worker="w0")
        campaign.record_lease(1, '[[0,9]]', attempts=0, status="failed")
        assert campaign.lease_states() == {
            0: {"keys": '[[0,1]]', "worker": "w0", "attempts": 2,
                "status": "pending"},
            1: {"keys": '[[0,9]]', "worker": "", "attempts": 0,
                "status": "failed"}}
        campaign.record_lease(0, '[[0,1]]', attempts=3, status="leased",
                              worker="w1")
        assert campaign.lease_states()[0]["attempts"] == 3
        campaign.clear()
        assert campaign.lease_states() == {}
