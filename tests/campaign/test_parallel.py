"""Parallel campaign engine: sharding, pickling, serial equivalence.

The contract under test is strict: the parallel engine must produce
results *bit-for-bit identical* to the serial runner — same
``class_outcomes`` (including iteration order), same weighted and raw
counts, same sample sequences — regardless of worker count.
"""

import os
import pickle

import pytest

from repro.campaign import (
    ExecutorConfig,
    ParallelCampaign,
    record_golden,
    resolve_jobs,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.campaign.parallel import class_cost, shard_by_cost
from repro.faultspace.defuse import ByteInterval, LIVE
from repro.programs import all_programs, bin_sem2, hi, micro

JOB_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def memcopy_golden():
    return record_golden(micro.memcopy(6))


@pytest.fixture(scope="module")
def hardened_golden():
    """A hardened benchmark (bin_sem2 + SUM+DMR) at reduced scale."""
    return record_golden(bin_sem2.hardened(1))


@pytest.fixture(scope="module")
def memcopy_serial(memcopy_golden):
    return run_full_scan(memcopy_golden, keep_records=True)


@pytest.fixture(scope="module")
def hardened_serial(hardened_golden):
    return run_full_scan(hardened_golden)


class TestJobsResolution:
    def test_none_means_serial(self):
        assert resolve_jobs(None) is None

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_campaign_rejects_serial_sentinel(self, memcopy_golden):
        with pytest.raises(ValueError, match="serial"):
            ParallelCampaign(memcopy_golden, None)

    def test_runner_rejects_executor_with_jobs(self, memcopy_golden):
        from repro.campaign import ExperimentExecutor

        with pytest.raises(ValueError, match="executor"):
            run_full_scan(memcopy_golden, jobs=2,
                          executor=ExperimentExecutor(memcopy_golden))


class TestSharding:
    def _interval(self, addr, first, last):
        return ByteInterval(addr=addr, first_slot=first, last_slot=last,
                            kind=LIVE)

    def test_shards_are_contiguous_and_complete(self):
        items = list(range(17))
        shards = shard_by_cost(items, [1] * len(items), 4)
        assert sum(shards, []) == items  # order + completeness
        assert 1 <= len(shards) <= 4

    def test_cost_balancing_beats_count_balancing(self):
        # Front-loaded costs (early injection slots are expensive): a
        # count-balanced split would put half the cost in shard 0.
        costs = [100, 100, 1, 1, 1, 1, 1, 1]
        shards = shard_by_cost(list(range(8)), costs, 2)
        assert shards[0] == [0, 1]
        assert shards[1] == [2, 3, 4, 5, 6, 7]

    def test_more_jobs_than_items(self):
        shards = shard_by_cost([1, 2], [5, 5], 8)
        assert shards == [[1], [2]]

    def test_empty_items(self):
        assert shard_by_cost([], [], 4) == []

    def test_class_cost_prefers_early_slots(self):
        total = 1000
        early = self._interval(0, 1, 10)
        late = self._interval(0, 900, 990)
        assert class_cost(early, total) > class_cost(late, total)

    def test_class_cost_includes_fast_forward_span(self):
        total = 100
        short = self._interval(0, 90, 91)
        long = self._interval(1, 2, 91)  # same injection slot, longer span
        assert class_cost(long, total) \
            == class_cost(short, total) + long.length - short.length


class TestPicklability:
    """The fork/spawn boundary: everything shipped to workers pickles."""

    def test_program_roundtrip(self, memcopy_golden):
        program = memcopy_golden.program
        clone = pickle.loads(pickle.dumps(program))
        assert clone.rom == program.rom
        assert clone.data == program.data
        assert clone.ram_size == program.ram_size

    def test_golden_run_roundtrip_is_executable(self, memcopy_golden):
        clone = pickle.loads(pickle.dumps(memcopy_golden))
        assert clone.output == memcopy_golden.output
        assert clone.cycles == memcopy_golden.cycles
        # A rebuilt executor over the clone reproduces serial outcomes.
        executor = ExecutorConfig().build(clone)
        live = clone.partition().live_classes()
        coord = live[0].experiments()[0]
        original = ExecutorConfig().build(memcopy_golden).run(coord)
        assert executor.run(coord).outcome == original.outcome

    def test_executor_config_roundtrip(self):
        config = ExecutorConfig(timeout_factor=2.5, timeout_slack=64,
                                use_snapshots=False, early_stop=False)
        assert pickle.loads(pickle.dumps(config)) == config


class TestFullScanEquivalence:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    @pytest.mark.parametrize("fixture", ["memcopy", "hardened"])
    def test_identical_to_serial(self, jobs, fixture, request):
        golden = request.getfixturevalue(f"{fixture}_golden")
        serial = request.getfixturevalue(f"{fixture}_serial")
        parallel = run_full_scan(golden, jobs=jobs)
        assert list(parallel.class_outcomes.items()) \
            == list(serial.class_outcomes.items())
        assert parallel.weighted_counts() == serial.weighted_counts()
        assert parallel.raw_counts() == serial.raw_counts()

    def test_records_identical_to_serial(self, memcopy_golden,
                                         memcopy_serial):
        parallel = run_full_scan(memcopy_golden, jobs=2, keep_records=True)
        assert parallel.records == memcopy_serial.records

    def test_progress_reaches_total(self, memcopy_golden):
        seen = []
        run_full_scan(memcopy_golden, jobs=2,
                      progress=lambda done, total: seen.append((done,
                                                                total)))
        assert seen[-1][0] == seen[-1][1] > 0
        assert [done for done, _ in seen] \
            == sorted(done for done, _ in seen)


class TestBruteForceEquivalence:
    def test_identical_to_serial_on_tiny_program(self):
        golden = record_golden(hi.baseline())
        serial = run_brute_force(golden)
        for jobs in JOB_COUNTS:
            parallel = run_brute_force(golden, jobs=jobs)
            assert list(parallel.outcomes.items()) \
                == list(serial.outcomes.items())
            assert parallel.counts() == serial.counts()


class TestSamplingEquivalence:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    @pytest.mark.parametrize("sampler",
                             ["uniform", "live-only", "biased-class"])
    def test_identical_to_serial(self, memcopy_golden, jobs, sampler):
        serial = run_sampling(memcopy_golden, 150, seed=7, sampler=sampler)
        parallel = run_sampling(memcopy_golden, 150, seed=7,
                                sampler=sampler, jobs=jobs)
        assert parallel.samples == serial.samples
        assert parallel.experiments_conducted \
            == serial.experiments_conducted
        assert parallel.population == serial.population
        assert parallel.counts() == serial.counts()

    def test_progress_counts_distinct_experiments(self, memcopy_golden):
        serial_seen, parallel_seen = [], []
        run_sampling(memcopy_golden, 100, seed=1,
                     progress=lambda d, t: serial_seen.append((d, t)))
        run_sampling(memcopy_golden, 100, seed=1, jobs=2,
                     progress=lambda d, t: parallel_seen.append((d, t)))
        assert serial_seen[-1][0] == serial_seen[-1][1] > 0
        assert parallel_seen[-1] == serial_seen[-1]


@pytest.mark.skipif(not os.environ.get("REPRO_FULL_EQUIVALENCE"),
                    reason="full-registry sweep is paper scale; set "
                           "REPRO_FULL_EQUIVALENCE=1 to run")
def test_every_registered_program_matches_serial_at_four_jobs():
    for name, thunk in sorted(all_programs().items()):
        golden = record_golden(thunk())
        serial = run_full_scan(golden)
        parallel = run_full_scan(golden, jobs=4)
        assert list(parallel.class_outcomes.items()) \
            == list(serial.class_outcomes.items()), name
        assert parallel.weighted_counts() == serial.weighted_counts(), name
