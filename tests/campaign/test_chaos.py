"""Self-hosting chaos: the fabric under its own fault injector.

The distributed fabric's contract is that transport faults can delay a
campaign but never skew it.  These tests turn the repository's fault
injector on the fabric itself: a seeded :class:`ChaosPlan` drops,
duplicates, corrupts and delays result frames through the deterministic
proxy, and every surviving campaign must match the serial ground truth
bit for bit — with the degradation (if any) exactly reflected in the
completeness report.  The nastier layers ride on top: a worker whose
frames arrive corrupted (CRC-detectable), a byzantine worker that lies
with a valid CRC (only cross-check sampling can catch it), and a
poisoned class key that kills every worker that touches it (hunted down
by shard bisection).
"""

import json
import warnings

import pytest

from repro.campaign import RetryPolicy, record_golden, run_full_scan
from repro.campaign.dist import (
    DistCoordinator,
    SupervisionPolicy,
    WorkerChaos,
    result_digest,
)
from repro.campaign.dist.chaos import (
    LEGACY_ENV,
    PLAN_ENV,
    ChaosInterrupt,
    ChaosPlan,
    plan_from_env,
    plan_from_spec,
)
from repro.campaign.dist.coordinator import serve_in_thread
from repro.programs import micro

from .test_dist import POLICY, _server_socket, _start_worker, run_dist

#: Chaos soaks retry far past the default budget: the injector *wants*
#: to burn attempts, and the invariant under test is correctness, not
#: retry frugality.
SOAK_POLICY = RetryPolicy(heartbeat=0.3, poll_interval=0.02, backoff=0.05,
                          max_retries=12)

#: Rates for the differential soak: every event class that cannot lie
#: (drops, dups, CRC-detectable corruption, delays) fires often enough
#: that a few dozen result frames see several of each.
SOAK_RATES = dict(drop_rate=0.12, dup_rate=0.15, corrupt_rate=0.08,
                  delay_rate=0.10, delay_seconds=0.005)

#: Supervision tuned for soaks: chaos charges failures constantly, so
#: the breaker threshold is parked high — quarantine behaviour has its
#: own tests below.
SOAK_SUPERVISION = SupervisionPolicy(failure_threshold=100.0,
                                     crosscheck_patience=30.0)


@pytest.fixture(scope="module")
def memory_golden():
    return record_golden(micro.memcopy(6))


@pytest.fixture(scope="module")
def memory_baseline(memory_golden):
    return run_full_scan(memory_golden, keep_records=True)


@pytest.fixture(scope="module")
def register_baseline(memory_golden):
    return run_full_scan(memory_golden, keep_records=True,
                         domain="register")


def assert_soak_invariant(result, baseline):
    """The chaos-soak acceptance bar, shared by every scenario.

    Every class the campaign *did* complete matches the serial ground
    truth exactly; every planned class is either present or accounted
    for in ``execution.missing``; and a complete campaign is
    bit-for-bit identical to the clean run.
    """
    base = baseline.class_outcomes
    for key, outcomes in result.class_outcomes.items():
        assert outcomes == base[key], f"class {key} diverged under chaos"
    present = set(result.class_outcomes)
    missing = {tuple(key) for key in result.execution.missing}
    assert present | missing == set(base)
    assert not (present & missing)
    if result.execution.complete:
        assert result == baseline
        assert result.records == baseline.records
    else:
        assert missing
        assert 0.0 < result.execution.completeness < 1.0


class TestChaosPlanUnits:
    def test_json_round_trip_is_exact(self):
        plan = ChaosPlan(seed=42, drop_rate=0.1, dup_rate=0.2,
                         corrupt_rate=0.05, lie_rate=0.3,
                         liars=("w1",), die_on_keys=((3, 7),),
                         stop_coordinator_after=9)
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos plan field"):
            ChaosPlan.from_dict({"seed": 1, "explode_rate": 1.0})

    def test_inactive_plan(self):
        assert not ChaosPlan(seed=5).active
        assert ChaosPlan(seed=5, drop_rate=0.01).active
        assert ChaosPlan(die_on_keys=((0, 1),)).active
        assert ChaosPlan(die_after_results=0).active

    def test_legacy_counter_dict_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            plan = plan_from_spec({"die_after_results": 2,
                                   "duplicate_results": 3})
        assert plan.die_after_results == 2
        assert plan.duplicate_results == 3
        assert plan.active

    def test_plan_and_none_pass_through(self):
        plan = ChaosPlan(seed=1, drop_rate=0.5)
        assert plan_from_spec(plan) is plan
        assert plan_from_spec(None) is None
        assert plan_from_spec({}) is None
        with pytest.raises(TypeError, match="dict or ChaosPlan"):
            plan_from_spec("drop everything")

    def test_plan_env_beats_legacy_env(self):
        plan = ChaosPlan(seed=3, drop_rate=0.5)
        environ = {PLAN_ENV: plan.to_json(),
                   LEGACY_ENV: json.dumps({"die_after_results": 1})}
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation on new path
            assert plan_from_env(environ) == plan

    def test_legacy_env_warns_but_works(self):
        environ = {LEGACY_ENV: json.dumps({"drop_after_results": 2})}
        with pytest.warns(DeprecationWarning, match=LEGACY_ENV):
            plan = plan_from_env(environ)
        assert plan.drop_after_results == 2
        assert plan_from_env({}) is None


class TestChaosDeterminism:
    def test_events_are_pure_in_seed_worker_index(self):
        plan = ChaosPlan(seed=11, drop_rate=0.3, dup_rate=0.3,
                         corrupt_rate=0.3, delay_rate=0.3)
        first = WorkerChaos(plan, "w0")
        second = WorkerChaos(plan, "w0")
        schedule = [first.events_for(i) for i in range(200)]
        assert schedule == [second.events_for(i) for i in range(200)]
        # ...and the schedule is not degenerate: something fires.
        assert any(schedule)

    def test_distinct_seeds_and_workers_decorrelate(self):
        base = ChaosPlan(seed=11, drop_rate=0.5, dup_rate=0.5)
        w0 = [WorkerChaos(base, "w0").events_for(i) for i in range(200)]
        other_worker = [WorkerChaos(base, "w1").events_for(i)
                        for i in range(200)]
        other_seed = [
            WorkerChaos(ChaosPlan(seed=12, drop_rate=0.5, dup_rate=0.5),
                        "w0").events_for(i) for i in range(200)]
        assert w0 != other_worker
        assert w0 != other_seed

    def test_at_most_one_tamper_and_one_fatal_event(self):
        plan = ChaosPlan(seed=2, corrupt_rate=1.0, lie_rate=1.0,
                         drop_rate=1.0, kill_rate=1.0)
        events = WorkerChaos(plan, "w0").events_for(0)
        assert "corrupt" in events and "lie" not in events
        assert "drop" in events and "kill" not in events

    def test_liars_gate_the_lie_event(self):
        plan = ChaosPlan(seed=2, lie_rate=1.0, liars=("evil",))
        assert "lie" in WorkerChaos(plan, "evil").events_for(0)
        assert "lie" not in WorkerChaos(plan, "honest").events_for(0)

    def test_tampered_changes_payload_and_digest(self):
        chaos = WorkerChaos(ChaosPlan(seed=1), "w0")
        message = {"type": "result", "key": [0, 1],
                   "rows": [[0, "none", 10, ""], [1, "sdc", 12, ""]]}
        tampered = chaos.tampered(message, 0)
        assert tampered["rows"] != message["rows"]
        assert tampered == chaos.tampered(message, 0)  # deterministic
        assert result_digest((0, 1), tampered["rows"]) \
            != result_digest((0, 1), message["rows"])

    def test_die_on_keys_raises_connection_error(self):
        chaos = WorkerChaos(ChaosPlan(die_on_keys=((4, 2),)), "w0")
        chaos.before_class((0, 1))  # unpoisoned: no-op
        with pytest.raises(ChaosInterrupt):
            chaos.before_class((4, 2))
        assert chaos.fired["die_on_key"] == 1
        assert isinstance(ChaosInterrupt("x"), ConnectionError)


class TestChaosSoak:
    """The issue's acceptance invariant, over fixed seeds and domains."""

    @pytest.mark.parametrize("seed", [7, 11, 13])
    def test_memory_soak_matches_serial(self, seed, memory_golden,
                                        memory_baseline):
        plan = ChaosPlan(seed=seed, **SOAK_RATES)
        result, _, spawned = run_dist(
            memory_golden, workers=2, worker_chaos=[plan, plan],
            policy=SOAK_POLICY, crosscheck=0.25,
            supervision=SOAK_SUPERVISION)
        assert not any(errors for _, _, errors in spawned)
        assert_soak_invariant(result, memory_baseline)
        assert result.execution.complete

    def test_register_soak_matches_serial(self, memory_golden,
                                          register_baseline):
        plan = ChaosPlan(seed=7, **SOAK_RATES)
        result, _, _ = run_dist(
            memory_golden, workers=2, domain="register",
            worker_chaos=[plan, plan], policy=SOAK_POLICY,
            crosscheck=0.25, supervision=SOAK_SUPERVISION)
        assert_soak_invariant(result, register_baseline)
        assert result.execution.complete

    def test_chaos_telemetry_records_what_fired(self, memory_golden,
                                                memory_baseline):
        plan = ChaosPlan(seed=7, **SOAK_RATES)
        _, _, spawned = run_dist(
            memory_golden, workers=2, worker_chaos=[plan, plan],
            policy=SOAK_POLICY, supervision=SOAK_SUPERVISION)
        fired = {}
        for worker, _, _ in spawned:
            for name, count in worker._chaos.fired.items():
                fired[name] = fired.get(name, 0) + count
        assert fired, "a soak that injected nothing proves nothing"

    def test_coordinator_crash_scheduled_by_the_plan(
            self, tmp_path, memory_golden, memory_baseline):
        """``stop_coordinator_after`` is the coordinator-side chaos
        event: the plan, not an ad-hoc test hook, schedules the crash,
        and a restart on the same journal completes bit-for-bit."""
        journal = tmp_path / "chaos.sqlite"
        sock = _server_socket()
        port = sock.getsockname()[1]
        first = DistCoordinator(
            memory_golden, sock=sock, shards=4, policy=POLICY,
            journal=journal, chaos=ChaosPlan(stop_coordinator_after=4))
        thread = serve_in_thread(first)
        _, worker_thread, errors = _start_worker(port, "w0")
        assert thread.join_result(60) is None  # the scheduled crash
        assert first.stopped
        import socket as socket_mod
        sock2 = socket_mod.create_server(("127.0.0.1", port))
        second = DistCoordinator(memory_golden, sock=sock2, shards=4,
                                 policy=POLICY, journal=journal,
                                 keep_records=True)
        result = serve_in_thread(second).join_result(60)
        worker_thread.join(10)
        assert not errors
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.resumed == 4


class TestIntegrity:
    def test_corrupting_worker_is_caught_by_crc(self, memory_golden,
                                                memory_baseline):
        """Every frame from one worker is tampered after digesting (a
        broken NIC, in effect): the CRC check refuses them all, the
        supervisor quarantines the worker, the honest peer finishes."""
        corrupt = ChaosPlan(seed=3, corrupt_rate=1.0)
        result, coordinator, _ = run_dist(
            memory_golden, workers=2, worker_chaos=[corrupt, None],
            policy=SOAK_POLICY,
            supervision=SupervisionPolicy(quarantine_seconds=0.2,
                                          max_quarantine_seconds=1.0))
        execution = result.execution
        assert execution.integrity_rejected > 0
        assert "w0" in execution.quarantined_workers
        assert_soak_invariant(result, memory_baseline)
        assert execution.complete
        # Not one corrupted frame was merged: the corrupter earned no
        # attribution at all.
        assert all(name != "w0" for name, _ in execution.workers)

    def test_byzantine_worker_is_outvoted_and_contained(
            self, tmp_path, memory_golden, memory_baseline):
        """The hardest case in the issue: a worker that lies *with a
        valid CRC*.  Cross-check sampling re-executes its keys on a
        second worker, the mismatch re-queues the key for a third
        independent execution, the vote convicts the liar, its entire
        unverified history is discarded and re-executed — and the
        campaign still converges to the exact serial counts."""
        from repro.campaign.journal import ExperimentJournal

        journal = tmp_path / "byzantine.sqlite"
        lie = ChaosPlan(seed=5, lie_rate=1.0, liars=("w0",))
        result, coordinator, _ = run_dist(
            memory_golden, workers=3, worker_chaos=[lie, lie, lie],
            policy=SOAK_POLICY, crosscheck=1.0, journal=journal,
            supervision=SupervisionPolicy(quarantine_seconds=0.2,
                                          exclusion_seconds=0.5,
                                          crosscheck_patience=30.0),
            worker_kw={"max_reconnects": 20})
        execution = result.execution
        assert execution.crosschecked > 0
        assert execution.crosscheck_mismatches > 0
        assert "w0" in execution.quarantined_workers
        state = coordinator.supervisor.state("w0")
        assert state.permanent, "a convicted liar must never rejoin"
        assert execution.discarded_results > 0
        assert_soak_invariant(result, memory_baseline)
        assert execution.complete
        # The journal's event log names the conviction.
        with ExperimentJournal(journal) as log:
            (entry,) = log.fabric_report()
        kinds = {event["kind"] for event in entry["events"]}
        assert "byzantine" in kinds
        assert "crosscheck-mismatch" in kinds

    def test_crosscheck_without_liars_confirms_everything(
            self, memory_golden, memory_baseline):
        result, _, _ = run_dist(
            memory_golden, workers=2, policy=POLICY, crosscheck=1.0,
            supervision=SupervisionPolicy(crosscheck_patience=30.0))
        execution = result.execution
        assert execution.crosschecked == execution.total_units
        assert execution.crosscheck_mismatches == 0
        assert execution.discarded_results == 0
        assert result == memory_baseline
        assert result.records == memory_baseline.records


class TestPoisonShard:
    def test_poison_key_is_bisected_down_and_isolated(
            self, tmp_path, memory_golden, memory_baseline):
        """One class key kills every worker that tries to execute it
        (a wild pointer in a simulator build, say).  The lease board
        bisects the dying shard until the key stands alone, declares it
        poisonous, and the campaign degrades by exactly that key."""
        from repro.campaign.journal import ExperimentJournal

        journal = tmp_path / "poison.sqlite"
        keys = sorted(memory_baseline.class_outcomes)
        poison = keys[len(keys) // 2]
        plan = ChaosPlan(die_on_keys=(poison,))
        # One big shard puts keys *behind* the poisoned one, so the
        # hunt must actually bisect to isolate it.
        result, _, _ = run_dist(
            memory_golden, workers=2, worker_chaos=[plan, plan],
            journal=journal, shards=1,
            policy=RetryPolicy(heartbeat=0.3, poll_interval=0.02,
                               backoff=0.05, max_retries=20),
            supervision=SupervisionPolicy(failure_threshold=100.0))
        execution = result.execution
        assert tuple(poison) in {tuple(k) for k in execution.poison_keys}
        assert execution.poison_splits >= 1
        assert not execution.complete
        missing = {tuple(k) for k in execution.missing}
        assert tuple(poison) in missing
        # Everything *except* the poisoned key completed, exactly.
        assert set(result.class_outcomes) == set(keys) - missing
        assert_soak_invariant(result, memory_baseline)
        with ExperimentJournal(journal) as log:
            (entry,) = log.fabric_report()
        kinds = {event["kind"] for event in entry["events"]}
        assert "poison-key" in kinds
