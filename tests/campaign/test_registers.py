"""Tests for the register-file fault-injection extension (Section VI-B)."""

import pytest

from repro.campaign import record_golden
from repro.campaign.registers import (
    RegisterExperimentExecutor,
    collect_pc_trace,
    register_partition,
    run_register_brute_force,
    run_register_scan,
)
from repro.faultspace.registers import (
    DEAD,
    LIVE,
    RegisterFaultCoordinate,
    RegisterFaultSpace,
    register_reads,
    register_writes,
)
from repro.isa import assemble
from repro.programs import micro

SOURCE = """
        .text
start:  li   r1, 5
        addi r2, r1, 1
        out  r2
        halt
"""


@pytest.fixture(scope="module")
def golden():
    return record_golden(assemble(SOURCE, ram_size=4))


class TestAccessTables:
    def test_alu_reads_and_writes(self):
        program = assemble(".text\n add r3, r1, r2\n halt")
        instr = program.rom[0]
        assert register_reads(instr) == (1, 2)
        assert register_writes(instr) == (3,)

    def test_store_reads_base_and_value(self):
        program = assemble(".text\n sw r2, 4(r1)\n halt")
        instr = program.rom[0]
        assert register_reads(instr) == (1, 2)
        assert register_writes(instr) == ()

    def test_load_reads_base_writes_dest(self):
        program = assemble(".text\n lw r2, 0(r1)\n halt")
        instr = program.rom[0]
        assert register_reads(instr) == (1,)
        assert register_writes(instr) == (2,)

    def test_r0_never_appears(self):
        program = assemble(".text\n add r0, r0, r0\n halt")
        instr = program.rom[0]
        assert register_reads(instr) == ()
        assert register_writes(instr) == ()

    def test_jal_writes_link_only(self):
        program = assemble(".text\nstart: call start")
        instr = program.rom[0]
        assert register_reads(instr) == ()
        assert register_writes(instr) == (14,)

    def test_duplicate_read_operands_deduplicated(self):
        program = assemble(".text\n add r2, r1, r1\n halt")
        assert register_reads(program.rom[0]) == (1,)


class TestPcTrace:
    def test_trace_length_matches_cycles(self, golden):
        trace = collect_pc_trace(golden)
        assert len(trace) == golden.cycles
        assert trace[0] == golden.program.entry

    def test_trace_of_implicit_halt_program(self):
        golden = record_golden(assemble(".text\nstart: nop\n nop",
                                        ram_size=4))
        assert collect_pc_trace(golden) == [0, 1]


class TestRegisterPartition:
    def test_intervals_tile_the_space(self, golden):
        partition = register_partition(golden)
        partition.validate()

    def test_r1_lifecycle(self, golden):
        # r1: written at slot 1, read at slot 2, then dead.
        partition = register_partition(golden)
        intervals = partition.intervals[1]
        kinds = [(iv.first_slot, iv.last_slot, iv.kind)
                 for iv in intervals]
        assert kinds == [(1, 1, DEAD), (2, 2, LIVE),
                         (3, golden.cycles, DEAD)]

    def test_untouched_register_is_dead(self, golden):
        partition = register_partition(golden)
        intervals = partition.intervals[7]
        assert len(intervals) == 1
        assert intervals[0].kind == DEAD

    def test_read_write_same_slot(self):
        # addi r1, r1, 1 reads then writes r1 in one slot.
        golden = record_golden(assemble(
            ".text\nstart: li r1, 1\n addi r1, r1, 1\n out r1\n halt",
            ram_size=4))
        partition = register_partition(golden)
        partition.validate()
        kinds = [(iv.first_slot, iv.last_slot, iv.kind)
                 for iv in partition.intervals[1]]
        assert kinds == [(1, 1, DEAD), (2, 2, LIVE), (3, 3, LIVE),
                         (4, 4, DEAD)]


class TestRegisterCampaign:
    def test_scan_matches_brute_force(self, golden):
        """The keystone property, now for the register fault model."""
        scan = run_register_scan(golden)
        brute = run_register_brute_force(golden)
        for coord, outcome in brute.items():
            assert scan.outcome_of(coord) == outcome, coord
        assert sum(scan.weighted_counts().values()) \
            == scan.fault_space_size

    def test_scan_matches_brute_force_on_memcopy(self):
        golden = record_golden(micro.counter(2))
        scan = run_register_scan(golden)
        brute = run_register_brute_force(golden)
        for coord, outcome in brute.items():
            assert scan.outcome_of(coord) == outcome, coord

    def test_flipping_live_register_fails(self, golden):
        executor = RegisterExperimentExecutor(golden)
        # r1 holds 5 and is read at slot 2: flip bit 1 -> output changes.
        record = executor.run(RegisterFaultCoordinate(slot=2, reg=1,
                                                      bit=1))
        assert record.outcome.is_failure

    def test_flipping_dead_register_is_benign(self, golden):
        executor = RegisterExperimentExecutor(golden)
        record = executor.run(RegisterFaultCoordinate(slot=1, reg=7,
                                                      bit=0))
        assert record.outcome.value == "no-effect"

    def test_executor_rejects_memory_coordinates(self, golden):
        from repro.faultspace import FaultCoordinate
        executor = RegisterExperimentExecutor(golden)
        with pytest.raises(TypeError):
            executor.run(FaultCoordinate(slot=1, addr=0, bit=0))

    def test_coverage_and_failure_count(self, golden):
        scan = run_register_scan(golden)
        assert 0.0 <= scan.weighted_coverage() <= 1.0
        assert scan.weighted_failure_count() > 0


class TestRegisterFaultSpace:
    def test_size(self):
        assert RegisterFaultSpace(cycles=2).size == 2 * 15 * 32

    def test_r0_excluded(self):
        with pytest.raises(ValueError, match="hardwired"):
            RegisterFaultCoordinate(slot=1, reg=0, bit=0)
