"""Tests for the campaign runners (full scan, brute force, sampling)."""

import pytest

from repro.campaign import (
    Outcome,
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.programs import hi, micro


@pytest.fixture(scope="module")
def hi_golden():
    return record_golden(hi.baseline())


@pytest.fixture(scope="module")
def hi_scan(hi_golden):
    return run_full_scan(hi_golden)


class TestFullScan:
    def test_weighted_counts_sum_to_fault_space(self, hi_scan):
        counts = hi_scan.weighted_counts()
        assert sum(counts.values()) == hi_scan.fault_space_size

    def test_raw_counts_sum_to_experiments(self, hi_scan):
        counts = hi_scan.raw_counts()
        assert sum(counts.values()) == hi_scan.experiments_conducted

    def test_outcome_of_resolves_every_coordinate(self, hi_scan):
        space = hi_scan.golden.fault_space
        for coord in space.iter_coordinates():
            assert hi_scan.outcome_of(coord) in Outcome

    def test_class_records_cover_all_live_classes(self, hi_scan):
        records = hi_scan.class_records()
        assert len(records) == len(hi_scan.class_outcomes)
        for interval, outcomes in records:
            assert len(outcomes) == 8

    def test_keep_records_retains_experiment_records(self, hi_golden):
        scan = run_full_scan(hi_golden, keep_records=True)
        assert len(scan.records) == scan.experiments_conducted

    def test_progress_callback_invoked(self, hi_golden):
        seen = []
        run_full_scan(hi_golden,
                      progress=lambda done, total: seen.append((done,
                                                                total)))
        assert seen[-1][0] == seen[-1][1] > 0

    def test_experiments_conducted_derived_from_outcome_tuples(self,
                                                               hi_scan):
        """Not hardcoded to 8 bits: campaigns over wider words (e.g. the
        32-bit register file) must report correct totals."""
        from repro.campaign import CampaignResult

        wide = CampaignResult(
            golden=hi_scan.golden, partition=hi_scan.partition,
            class_outcomes={
                key: outcomes * 4  # pretend 32 experiments per class
                for key, outcomes in hi_scan.class_outcomes.items()})
        assert wide.experiments_conducted \
            == 32 * len(hi_scan.class_outcomes)
        assert hi_scan.experiments_conducted \
            == 8 * len(hi_scan.class_outcomes)


class TestBruteForce:
    def test_brute_force_covers_whole_space(self, hi_golden):
        result = run_brute_force(hi_golden)
        assert len(result.outcomes) == hi_golden.fault_space.size
        assert sum(result.counts().values()) == result.fault_space_size

    def test_brute_force_agrees_with_pruned_scan(self, hi_golden, hi_scan):
        """Pruning is an optimization: it must not change ANY result."""
        brute = run_brute_force(hi_golden)
        for coord, outcome in brute.outcomes.items():
            assert hi_scan.outcome_of(coord) == outcome
        assert brute.counts() == hi_scan.weighted_counts()


class TestSampling:
    def test_uniform_sampling_population_is_w(self, hi_golden):
        result = run_sampling(hi_golden, 100, seed=1)
        assert result.population == hi_golden.fault_space.size
        assert result.n_samples == 100

    def test_live_only_population_is_live_weight(self, hi_golden):
        partition = hi_golden.partition()
        result = run_sampling(hi_golden, 100, seed=1, sampler="live-only",
                              partition=partition)
        assert result.population == partition.live_weight

    def test_sampling_shares_experiments_within_classes(self, hi_golden):
        result = run_sampling(hi_golden, 500, seed=2)
        # The Hi fault space has very few distinct (class, bit) pairs, so
        # 500 samples must share far fewer experiments.
        assert result.experiments_conducted < 100
        assert result.n_samples == 500

    def test_sample_outcomes_match_full_scan(self, hi_golden, hi_scan):
        result = run_sampling(hi_golden, 300, seed=3)
        for sample, outcome in result.samples:
            assert hi_scan.outcome_of(sample.coordinate) == outcome

    def test_sampling_deterministic_per_seed(self, hi_golden):
        a = run_sampling(hi_golden, 50, seed=9)
        b = run_sampling(hi_golden, 50, seed=9)
        assert [(s.coordinate, o) for s, o in a.samples] \
            == [(s.coordinate, o) for s, o in b.samples]

    def test_unknown_sampler_rejected(self, hi_golden):
        with pytest.raises(ValueError, match="unknown sampler"):
            run_sampling(hi_golden, 10, sampler="bogus")

    def test_zero_samples_rejected(self, hi_golden):
        with pytest.raises(ValueError):
            run_sampling(hi_golden, 0)

    def test_biased_sampler_runs(self, hi_golden):
        result = run_sampling(hi_golden, 100, seed=4,
                              sampler="biased-class")
        assert result.sampler == "biased-class"
        assert result.n_samples == 100

    def test_failure_count_counts_failures_only(self, hi_golden):
        result = run_sampling(hi_golden, 200, seed=5)
        manual = sum(1 for _, o in result.samples if o.is_failure)
        assert result.failure_count() == manual


class TestMultiByteProgram:
    def test_full_scan_of_memcopy_is_consistent(self):
        golden = record_golden(micro.memcopy(4))
        scan = run_full_scan(golden)
        counts = scan.weighted_counts()
        assert sum(counts.values()) == golden.fault_space.size
        # Corrupting any live source/destination byte must fail somewhere.
        failures = sum(n for o, n in counts.items() if o.is_failure)
        assert failures > 0
