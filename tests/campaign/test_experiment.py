"""Tests for the single-experiment executor."""

import pytest

from repro.campaign import (
    ExperimentExecutor,
    Outcome,
    record_golden,
)
from repro.faultspace import FaultCoordinate
from repro.isa import assemble

#: A store/load program: corrupting the stored byte between store and
#: load flips the output.
SOURCE = """
        .data
v:      .byte 0
        .text
start:  li   r1, 'A'
        sb   r1, v(zero)
        nop
        lbu  r2, v(zero)
        out  r2
        halt
"""


@pytest.fixture
def golden():
    return record_golden(assemble(SOURCE, ram_size=1))


class TestExperimentExecutor:
    def test_live_window_fault_is_failure(self, golden):
        executor = ExperimentExecutor(golden)
        # Stored at slot 2, read at slot 4: slots 3 and 4 are live.
        for slot in (3, 4):
            record = executor.run(FaultCoordinate(slot=slot, addr=0, bit=0))
            assert record.outcome is Outcome.SDC

    def test_fault_before_store_is_overwritten(self, golden):
        executor = ExperimentExecutor(golden)
        for slot in (1, 2):
            record = executor.run(FaultCoordinate(slot=slot, addr=0, bit=0))
            assert record.outcome is Outcome.NO_EFFECT

    def test_fault_after_last_read_is_dormant(self, golden):
        executor = ExperimentExecutor(golden)
        for slot in (5, 6):
            record = executor.run(FaultCoordinate(slot=slot, addr=0, bit=0))
            assert record.outcome is Outcome.NO_EFFECT

    def test_equivalent_slots_share_outcomes_per_bit(self, golden):
        executor = ExperimentExecutor(golden)
        for bit in range(8):
            outcomes = {
                executor.run(FaultCoordinate(slot=s, addr=0, bit=bit))
                .outcome for s in (3, 4)}
            assert len(outcomes) == 1

    def test_slot_beyond_runtime_rejected(self, golden):
        executor = ExperimentExecutor(golden)
        with pytest.raises(ValueError, match="beyond golden runtime"):
            executor.run(FaultCoordinate(slot=golden.cycles + 1,
                                         addr=0, bit=0))

    def test_snapshot_and_naive_paths_agree(self, golden):
        fast = ExperimentExecutor(golden, use_snapshots=True)
        slow = ExperimentExecutor(golden, use_snapshots=False)
        for slot in range(1, golden.cycles + 1):
            for bit in range(8):
                coord = FaultCoordinate(slot=slot, addr=0, bit=bit)
                assert fast.run(coord).outcome == slow.run(coord).outcome

    def test_out_of_order_slots_force_rewind(self, golden):
        # Convergence off: the criticality pre-skip may classify a
        # coordinate without ever touching the machine, and this test
        # is about the snapshot engine's rewind behaviour.
        executor = ExperimentExecutor(golden, use_convergence=False)
        executor.run(FaultCoordinate(slot=4, addr=0, bit=0))
        executor.run(FaultCoordinate(slot=2, addr=0, bit=0))
        assert executor.rewinds == 1

    def test_sorted_slots_never_rewind(self, golden):
        executor = ExperimentExecutor(golden)
        for slot in range(1, golden.cycles + 1):
            executor.run(FaultCoordinate(slot=slot, addr=0, bit=0))
        assert executor.rewinds == 0

    def test_early_stop_matches_full_run_failure_verdict(self, golden):
        eager = ExperimentExecutor(golden, early_stop=True)
        patient = ExperimentExecutor(golden, early_stop=False)
        for slot in range(1, golden.cycles + 1):
            for bit in range(8):
                coord = FaultCoordinate(slot=slot, addr=0, bit=bit)
                assert (eager.run(coord).outcome.is_failure
                        == patient.run(coord).outcome.is_failure)

    def test_invalid_timeout_factor_rejected(self, golden):
        with pytest.raises(ValueError):
            ExperimentExecutor(golden, timeout_factor=0.5)


class TestTimeoutDetection:
    def test_fault_induced_livelock_times_out(self):
        # The loop counter lives in RAM; corrupting it upward makes the
        # loop run far beyond the golden runtime.
        golden = record_golden(assemble("""
            .data
n:      .word 2
            .text
start:  lw   r1, n(zero)
loop:   addi r1, r1, -1
        bnez r1, loop
        li   r2, 'd'
        out  r2
        halt
""", ram_size=4))
        executor = ExperimentExecutor(golden)
        # Flip a high bit of the counter right before it is read.
        record = executor.run(FaultCoordinate(slot=1, addr=3, bit=6))
        assert record.outcome is Outcome.TIMEOUT

    def test_trap_reports_cpu_exception_and_trap_name(self):
        # Corrupt a RAM-held address so the load faults.
        golden = record_golden(assemble("""
            .data
ptr:    .word 8
val:    .word 7
            .text
start:  lw   r1, ptr(zero)
        lw   r2, 0(r1)
        out  r2
        halt
""", ram_size=12))
        executor = ExperimentExecutor(golden)
        record = executor.run(FaultCoordinate(slot=1, addr=1, bit=7))
        assert record.outcome is Outcome.CPU_EXCEPTION
        assert record.trap in ("memory-fault", "alignment-fault")
