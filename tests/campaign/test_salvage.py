"""Torn-write recovery: corrupt journals salvage instead of dying.

A power cut mid-checkpoint, a truncated ``scp``, a bad sector — any of
them can leave the campaign journal failing SQLite's ``quick_check``.
The contract under test: opening such a file raises a loud
:class:`JournalCorruptError` by default, ``salvage=True`` rebuilds a
fresh journal from every row that is still readable (moving the
original aside as forensic evidence), and every resuming layer —
serial, pool, distributed — validates recovered classes against the
domain's expected experiment weights instead of trusting them blindly,
so a half-lost class is re-executed, never merged.
"""

import sqlite3

import pytest

from repro.campaign import record_golden, run_full_scan
from repro.campaign.journal import (
    SALVAGE_TABLES,
    ExperimentJournal,
    JournalCorruptError,
    SalvageReport,
    invalid_classes,
    salvage_journal,
)
from repro.programs import micro

from .test_dist import run_dist


@pytest.fixture(scope="module")
def memory_golden():
    return record_golden(micro.memcopy(6))


@pytest.fixture(scope="module")
def memory_baseline(memory_golden):
    return run_full_scan(memory_golden, keep_records=True)


def journal_with_campaign(tmp_path, golden):
    """A closed on-disk journal holding one complete campaign."""
    path = tmp_path / "campaign.sqlite"
    run_full_scan(golden, journal=path)
    return path


def corrupt_pages(path, *, start=4096, length=8192):
    """Zero out interior pages, the shape real torn writes take."""
    size = path.stat().st_size
    assert size > start + length, "journal too small for this corruption"
    with open(path, "r+b") as handle:
        handle.seek(start)
        handle.write(b"\x00" * length)


class TestSalvageTablesInSync:
    def test_salvage_covers_every_schema_table(self, tmp_path):
        """Every table the schema creates must be salvageable — a table
        added to ``_SCHEMA`` without a ``SALVAGE_TABLES`` entry would be
        silently dropped by recovery."""
        with ExperimentJournal(tmp_path / "probe.sqlite") as journal:
            schema_tables = {
                name for (name,) in journal._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table' "
                    "AND name NOT LIKE 'sqlite_%'")}
            columns = {
                table: [row[1] for row in journal._conn.execute(
                    f"PRAGMA table_info({table})")]
                for table in schema_tables}
        salvaged = {table for table, _ in SALVAGE_TABLES}
        assert salvaged == schema_tables
        for table, cols in SALVAGE_TABLES:
            assert set(cols) == set(columns[table]), table


class TestCorruptJournal:
    def test_default_open_raises_loudly(self, tmp_path, memory_golden):
        path = journal_with_campaign(tmp_path, memory_golden)
        corrupt_pages(path)
        with pytest.raises(JournalCorruptError, match="salvage"):
            ExperimentJournal(path)
        # The refusal is non-destructive: the evidence stays in place.
        assert path.exists()
        assert not path.with_suffix(".sqlite.corrupt").exists()

    def test_salvage_open_recovers_and_archives(self, tmp_path,
                                                memory_golden):
        path = journal_with_campaign(tmp_path, memory_golden)
        corrupt_pages(path)
        with ExperimentJournal(path, salvage=True) as journal:
            report = journal.salvage_report
            assert isinstance(report, SalvageReport)
            assert report.recovered.get("campaigns", 0) >= 1
            assert report.total_rows > 0
        # The corrupt original was moved aside, not destroyed.
        corrupt = path.parent / (path.name + ".corrupt")
        assert corrupt.exists()
        assert report.source == str(corrupt)
        # The rebuilt file is a healthy journal from here on.
        with ExperimentJournal(path) as journal:
            assert journal.salvage_report is None

    def test_healthy_journal_ignores_salvage_flag(self, tmp_path,
                                                  memory_golden):
        path = journal_with_campaign(tmp_path, memory_golden)
        with ExperimentJournal(path, salvage=True) as journal:
            assert journal.salvage_report is None
        assert not (path.parent / (path.name + ".corrupt")).exists()

    def test_unreadable_garbage_still_raises(self, tmp_path):
        path = tmp_path / "noise.sqlite"
        path.write_bytes(b"this was never a database" * 100)
        with pytest.raises(JournalCorruptError):
            ExperimentJournal(path)

    def test_salvage_then_resume_reaches_exact_result(
            self, tmp_path, memory_golden, memory_baseline):
        """The end-to-end promise: corrupt → salvage → resume equals a
        clean uninterrupted campaign bit for bit."""
        path = journal_with_campaign(tmp_path, memory_golden)
        corrupt_pages(path)
        salvage_journal(path)
        result = run_full_scan(memory_golden, journal=path,
                               keep_records=True)
        assert result == memory_baseline
        assert result.records == memory_baseline.records
        assert result.execution.complete


class TestInvalidClasses:
    EXPECTED = {(0, 1): 3, (2, 5): 2}

    def test_healthy_classes_pass(self):
        completed = {(0, 1): [(0, "none", 1, ""), (1, "sdc", 2, ""),
                              (2, "none", 3, "")],
                     (2, 5): [(0, "none", 1, ""), (1, "none", 1, "")]}
        assert invalid_classes(completed, self.EXPECTED) == []

    def test_truncated_class_is_flagged(self):
        completed = {(0, 1): [(0, "none", 1, ""), (1, "sdc", 2, "")]}
        assert invalid_classes(completed, self.EXPECTED) == [(0, 1)]

    def test_wrong_bit_sequence_is_flagged(self):
        completed = {(2, 5): [(0, "none", 1, ""), (2, "none", 1, "")]}
        assert invalid_classes(completed, self.EXPECTED) == [(2, 5)]

    def test_unknown_keys_are_ignored(self):
        completed = {(9, 9): [(0, "none", 1, "")]}
        assert invalid_classes(completed, self.EXPECTED) == []


class TestDistPrunesPartialClasses:
    def test_partial_resumed_class_is_discarded_and_reexecuted(
            self, tmp_path, memory_golden, memory_baseline):
        """A salvaged journal can hold a class missing its tail rows.
        The distributed coordinator must catch it at resume, discard
        it, and re-execute — silently merging it would undercount that
        class's outcomes forever."""
        path = journal_with_campaign(tmp_path, memory_golden)
        # Surgically truncate one journaled class: drop its last bits,
        # exactly what losing the page holding them does.
        conn = sqlite3.connect(path)
        with conn:
            (axis, first_slot) = conn.execute(
                "SELECT axis, first_slot FROM class_results "
                "ORDER BY axis, first_slot LIMIT 1").fetchone()
            conn.execute(
                "DELETE FROM class_results WHERE axis = ? AND "
                "first_slot = ? AND bit > 0", (axis, first_slot))
        conn.close()
        result, _, _ = run_dist(memory_golden, journal=path)
        execution = result.execution
        assert execution.discarded_results >= 1
        assert execution.complete
        assert result == memory_baseline
        with ExperimentJournal(path) as journal:
            (entry,) = journal.fabric_report()
        assert any(event["kind"] == "salvage-prune"
                   for event in entry["events"])
