"""Tests for text report rendering."""

import pytest

from repro.analysis import (
    failure_attribution,
    fig2_report,
    fig3_report,
    format_table,
    outcome_histogram,
    table1_report,
    verdict_report,
)
from repro.analysis.figures import Fig2Series
from repro.campaign import CampaignSummary, record_golden, run_full_scan
from repro.programs import hi


@pytest.fixture(scope="module")
def hi_scan():
    return run_full_scan(record_golden(hi.baseline()))


@pytest.fixture(scope="module")
def dft_scan():
    return run_full_scan(record_golden(hi.dft_variant(4)))


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        assert format_table(["x"], [], title="T").startswith("T\n")


class TestReports:
    def test_table1_report_mentions_poisson_params(self):
        text = table1_report()
        assert "P(k faults)" in text
        assert "2^20" in text

    def test_fig2_report_contains_variants(self, hi_scan, dft_scan):
        series = [Fig2Series.from_summary(CampaignSummary.from_result(s))
                  for s in (hi_scan, dft_scan)]
        text = fig2_report(series)
        assert "hi" in text and "hi-dft4" in text

    def test_fig3_report(self, hi_scan, dft_scan):
        summaries = {
            "hi": CampaignSummary.from_result(hi_scan),
            "hi-dft4": CampaignSummary.from_result(dft_scan),
        }
        text = fig3_report(summaries)
        assert "62.5%" in text and "75.0%" in text

    def test_verdict_report_flags_delusion(self, hi_scan, dft_scan):
        text = verdict_report(CampaignSummary.from_result(hi_scan),
                              CampaignSummary.from_result(dft_scan),
                              "hi")
        assert "r = 1.000" in text
        assert "misleading here" in text

    def test_outcome_histogram_shares_sum_to_one(self, hi_scan):
        text = outcome_histogram(hi_scan)
        assert "sdc" in text
        assert "no-effect" in text

    def test_failure_attribution_names_msg(self, hi_scan):
        attribution = failure_attribution(hi_scan)
        assert attribution
        assert attribution[0][0] == "msg"
        assert attribution[0][1] == 48
