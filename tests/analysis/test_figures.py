"""Tests for the figure data generators."""

import pytest

from repro.analysis import (
    fig1_data,
    fig2_data,
    fig2_verdicts,
    fig3_data,
    render_fault_space,
    table1_data,
)
from repro.campaign import CampaignSummary, record_golden, run_full_scan
from repro.programs import hi


@pytest.fixture(scope="module")
def hi_golden():
    return record_golden(hi.baseline())


@pytest.fixture(scope="module")
def summaries(hi_golden):
    base = CampaignSummary.from_result(run_full_scan(hi_golden))
    dft = CampaignSummary.from_result(
        run_full_scan(record_golden(hi.dft_variant(4))))
    return {"hi": base, "hi-dft4": dft}


class TestTable1:
    def test_rows_k0_to_k5(self):
        rows = table1_data()
        assert [r["k"] for r in rows] == [0, 1, 2, 3, 4, 5]
        assert rows[0]["probability"] == pytest.approx(1.0, abs=1e-10)
        assert rows[1]["probability"] == pytest.approx(1.66e-14, rel=0.02)
        assert rows[2]["probability"] < 1e-27


class TestFig1:
    def test_reduction_numbers(self, hi_golden):
        data = fig1_data(hi_golden)
        assert data["fault_space_size"] == 128
        assert data["experiments"] == 16  # 2 bytes x 8 bits
        assert data["reduction_factor"] == pytest.approx(8.0)


class TestFig2:
    def test_series_fields(self, summaries):
        series = fig2_data(summaries)
        assert {s.variant for s in series} == {"hi", "hi-dft4"}
        for s in series:
            assert 0.0 <= s.coverage_weighted <= 1.0
            assert s.failures_weighted == 48

    def test_verdicts_expose_misleading_metrics(self, summaries):
        data = fig2_verdicts(summaries["hi"], summaries["hi-dft4"],
                             "hi-vs-dft")
        assert data["ratio"] == pytest.approx(1.0)
        assert "coverage weighted (pitfall 3)" in \
            data["misleading_metrics"]


class TestFig3:
    def test_rows(self, summaries):
        rows = fig3_data(summaries)
        by_name = {r["variant"]: r for r in rows}
        assert by_name["hi"]["coverage"] == pytest.approx(0.625)
        assert by_name["hi-dft4"]["coverage"] == pytest.approx(0.75)
        assert all(r["failures"] == 48 for r in rows)


class TestRenderFaultSpace:
    def test_marks_accesses_and_liveness(self, hi_golden):
        art = render_fault_space(hi_golden)
        lines = art.splitlines()
        assert lines[0].startswith("cycle")
        assert len(lines) == 3  # header + 2 bytes
        # Byte 0: W at slot 2, R at slot 5, live in between.
        assert lines[1].endswith(".W##R...")

    def test_truncation_notice(self):
        from repro.programs import micro
        golden = record_golden(micro.memcopy(8))
        art = render_fault_space(golden, max_cycles=10, max_bytes=2)
        assert "truncated" in art
