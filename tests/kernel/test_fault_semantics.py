"""Fault-injection semantics of the kernel: what corruption does where.

These tests inject specific faults into kernel state and check the
failure (or recovery) modes — the mechanism-level behaviour behind the
campaign-level numbers.
"""

import pytest

from repro.campaign import (
    ExperimentExecutor,
    Outcome,
    record_golden,
)
from repro.faultspace import FaultCoordinate
from repro.kernel import KernelBuilder


def build(protect):
    kb = KernelBuilder(n_threads=2, protect=protect)
    kb.add_semaphore("go", initial=0)
    kb.set_thread_body(0, [
        "call go_post",
        "call __yield",
        "li   r4, 'A'",
        "out  r4",
        "halt",
    ])
    kb.set_thread_body(1, [
        "call go_wait",
        "li   r4, 'B'",
        "out  r4",
    ])
    return kb.build("faultsem" + ("-p" if protect else ""))


@pytest.fixture(scope="module")
def baseline_golden():
    return record_golden(build(False))


@pytest.fixture(scope="module")
def hardened_golden():
    return record_golden(build(True))


def inject(golden, addr, bit, slot):
    executor = ExperimentExecutor(golden)
    return executor.run(FaultCoordinate(slot=slot, addr=addr, bit=bit))


class TestBaselineKernelFaults:
    def test_corrupted_semaphore_count_breaks_the_protocol(
            self, baseline_golden):
        """Clearing the posted count (or forging one) desynchronizes the
        threads; since the main thread halts regardless, the visible
        failure mode is wrong/missing output (SDC)."""
        program = baseline_golden.program
        sem_addr = program.symbol("go")
        outcomes = {inject(baseline_golden, sem_addr, 0, slot).outcome
                    for slot in range(2, baseline_golden.cycles)}
        assert Outcome.SDC in outcomes
        assert any(o.is_failure for o in outcomes)

    def test_corrupted_cur_tid_crashes_scheduler(self, baseline_golden):
        """A high bit flipped in the current-thread id sends the TCB
        address computation into the wild: a CPU exception."""
        program = baseline_golden.program
        cur_addr = program.symbol("__cur")
        outcomes = {inject(baseline_golden, cur_addr + 2, 7, slot).outcome
                    for slot in range(1, baseline_golden.cycles, 7)}
        assert Outcome.CPU_EXCEPTION in outcomes

    def test_most_faults_in_unused_stack_are_benign(self, baseline_golden):
        program = baseline_golden.program
        stack_addr = program.symbol("__stack0")
        record = inject(baseline_golden, stack_addr + 8, 3, 1)
        assert record.outcome is Outcome.NO_EFFECT


class TestHardenedKernelFaults:
    def test_corrupted_semaphore_is_corrected(self, hardened_golden):
        """The same semaphore corruption is detected and repaired by the
        SUM+DMR guard."""
        program = hardened_golden.program
        sem_addr = program.symbol("go")
        benign = 0
        total = 0
        for slot in range(2, hardened_golden.cycles, 3):
            outcome = inject(hardened_golden, sem_addr, 0, slot).outcome
            total += 1
            if outcome.is_benign:
                benign += 1
        assert benign / total > 0.8

    def test_corrupted_tid_mostly_detected(self, hardened_golden):
        """Corrupting the protected current-thread word is overwhelmingly
        caught and repaired; only the tiny windows between a guard check
        and the guarded use can escape."""
        program = hardened_golden.program
        cur_addr = program.symbol("__cur")
        outcomes = []
        for slot in range(1, hardened_golden.cycles, 11):
            for bit in (0, 7):
                outcomes.append(inject(hardened_golden, cur_addr + 2,
                                       bit, slot).outcome)
        benign = sum(1 for o in outcomes if o.is_benign)
        corrected = sum(1 for o in outcomes
                        if o is Outcome.DETECTED_CORRECTED)
        assert benign / len(outcomes) > 0.8
        assert corrected > 0

    def test_replica_corruption_is_harmless(self, hardened_golden):
        """Single faults in the replica never cause failures: the
        primary's checksum still matches."""
        program = hardened_golden.program
        sem_addr = program.symbol("go")
        replica_addr = sem_addr + 4 * 4  # SYNC_WORDS words later
        for slot in range(1, hardened_golden.cycles, 5):
            outcome = inject(hardened_golden, replica_addr, 2,
                             slot).outcome
            assert outcome.is_benign, slot
