"""Tests for the cooperative kernel builder."""

import pytest

from repro.campaign import record_golden
from repro.kernel import KernelBuildError, KernelBuilder, TCB_WORDS
from repro.kernel.builder import CONTEXT_WORDS, SYNC_WORDS


def two_thread_pingpong(protect=False, rounds=3, **kwargs):
    kb = KernelBuilder(n_threads=2, protect=protect, **kwargs)
    kb.add_semaphore("go", initial=0)
    kb.add_semaphore("done", initial=0)
    kb.set_thread_body(0, [
        f"addi r3, zero, {rounds}",
        "m_loop:",
        "call go_post",
        "call done_wait",
        "li   r4, 'a'",
        "out  r4",
        "addi r3, r3, -1",
        "bnez r3, m_loop",
        "halt",
    ])
    kb.set_thread_body(1, [
        "w_loop:",
        "call go_wait",
        "li   r4, 'b'",
        "out  r4",
        "call done_post",
        "j    w_loop",
    ])
    return kb.build("pingpong")


class TestSpecificationValidation:
    def test_needs_threads(self):
        with pytest.raises(KernelBuildError):
            KernelBuilder(n_threads=0)

    def test_duplicate_names_rejected(self):
        kb = KernelBuilder(n_threads=1)
        kb.add_semaphore("s")
        with pytest.raises(KernelBuildError, match="duplicate"):
            kb.add_mutex("s")

    def test_bad_object_name_rejected(self):
        kb = KernelBuilder(n_threads=1)
        with pytest.raises(KernelBuildError):
            kb.add_semaphore("1bad")

    def test_negative_semaphore_initial_rejected(self):
        kb = KernelBuilder(n_threads=1)
        with pytest.raises(KernelBuildError):
            kb.add_semaphore("s", initial=-1)

    def test_buffer_initializer_length_checked(self):
        kb = KernelBuilder(n_threads=1)
        with pytest.raises(KernelBuildError):
            kb.add_buffer("b", 3, init=[1])

    def test_thread_body_required(self):
        kb = KernelBuilder(n_threads=2)
        kb.set_thread_body(0, ["halt"])
        with pytest.raises(KernelBuildError, match="no body"):
            kb.build("x")

    def test_thread_body_set_once(self):
        kb = KernelBuilder(n_threads=1)
        kb.set_thread_body(0, ["halt"])
        with pytest.raises(KernelBuildError, match="already set"):
            kb.set_thread_body(0, ["halt"])

    def test_bad_granularity_rejected(self):
        with pytest.raises(KernelBuildError):
            KernelBuilder(n_threads=1, guard_granularity="sometimes")

    def test_stack_size_validated(self):
        with pytest.raises(KernelBuildError):
            KernelBuilder(n_threads=1, stack_bytes=6)


class TestSchedulingSemantics:
    def test_pingpong_output_alternates(self):
        golden = record_golden(two_thread_pingpong())
        assert golden.output == b"ba" * 3

    def test_protected_variant_same_output(self):
        baseline = record_golden(two_thread_pingpong(protect=False))
        hardened = record_golden(two_thread_pingpong(protect=True))
        assert hardened.output == baseline.output

    def test_protection_costs_time_and_memory(self):
        baseline = two_thread_pingpong(protect=False)
        hardened = two_thread_pingpong(protect=True)
        assert hardened.ram_size > baseline.ram_size
        assert record_golden(hardened).cycles \
            > record_golden(baseline).cycles

    def test_op_granularity_is_cheaper_than_access(self):
        per_op = record_golden(two_thread_pingpong(
            protect=True, guard_granularity="op"))
        per_access = record_golden(two_thread_pingpong(
            protect=True, guard_granularity="access"))
        assert per_op.cycles < per_access.cycles
        assert per_op.output == per_access.output

    def test_sched_stats_count_switches(self):
        program = two_thread_pingpong(sched_stats=True)
        golden = record_golden(program)
        machine_ram_stats_addr = program.symbol("__sched_stats")
        # The golden run must have performed at least one switch per round.
        import struct
        # Re-run to inspect final RAM.
        from repro.isa import Machine
        machine = Machine(program)
        machine.run(100_000)
        total = struct.unpack_from("<I", machine.ram,
                                   machine_ram_stats_addr)[0]
        per_thread = struct.unpack_from(
            "<II", machine.ram, machine_ram_stats_addr + 4)
        assert total >= 6
        assert sum(per_thread) == total

    def test_stats_can_be_disabled(self):
        program = two_thread_pingpong(sched_stats=False)
        assert "__sched_stats" not in program.data_labels
        assert record_golden(program).output == b"ba" * 3

    def test_single_thread_kernel_runs(self):
        kb = KernelBuilder(n_threads=1)
        kb.set_thread_body(0, ["li r1, 'x'", "out r1", "halt"])
        golden = record_golden(kb.build("solo"))
        assert golden.output == b"x"

    def test_yield_roundtrip_preserves_thread_registers(self):
        kb = KernelBuilder(n_threads=2)
        kb.set_thread_body(0, [
            "li   r1, 11", "li   r2, 22", "li   r3, 33",
            "li   r4, 44", "li   r5, 55", "li   r6, 66", "li   r7, 77",
            "call __yield",
            "out  r1", "out  r2", "out  r3", "out  r4",
            "out  r5", "out  r6", "out  r7",
            "halt",
        ])
        kb.set_thread_body(1, ["nop"])
        golden = record_golden(kb.build("regs"))
        assert golden.output == bytes([11, 22, 33, 44, 55, 66, 77])


class TestSynchronizationPrimitives:
    def test_counting_semaphore_counts(self):
        kb = KernelBuilder(n_threads=1)
        kb.add_semaphore("s", initial=2)
        kb.set_thread_body(0, [
            "call s_wait", "call s_wait",   # both immediate
            "call s_post",
            "call s_wait",                  # consumes the post
            "li   r1, 'd'", "out r1", "halt",
        ])
        assert record_golden(kb.build("count")).output == b"d"

    def test_mutex_provides_exclusion(self):
        kb = KernelBuilder(n_threads=2)
        kb.add_mutex("m")
        kb.add_word("shared", init=0)
        kb.set_thread_body(0, [
            "call m_lock",
            "call __yield",          # hold the lock across a yield
            "call shared_load",
            "addi r1, r1, 1",
            "call shared_store",
            "call m_unlock",
            "w0:",
            "call shared_load",
            "addi r2, zero, 2",
            "bne  r1, r2, w0_again",
            "li   r3, 'O'",
            "out  r3",
            "halt",
            "w0_again:",
            "call __yield",
            "j    w0",
        ])
        kb.set_thread_body(1, [
            "call m_lock",
            "call shared_load",
            "addi r1, r1, 1",
            "call shared_store",
            "call m_unlock",
        ])
        assert record_golden(kb.build("mutex")).output == b"O"

    def test_flag_wait_blocks_until_all_bits(self):
        kb = KernelBuilder(n_threads=2)
        kb.add_flag("f")
        kb.set_thread_body(0, [
            "addi r1, zero, 3",     # wait for bits 0b11
            "call f_wait",
            "li   r2, 'F'",
            "out  r2",
            "halt",
        ])
        kb.set_thread_body(1, [
            "addi r1, zero, 1",
            "call f_set",
            "call __yield",
            "addi r1, zero, 2",
            "call f_set",
        ])
        assert record_golden(kb.build("flag")).output == b"F"

    def test_flag_wait_clears_consumed_bits(self):
        kb = KernelBuilder(n_threads=1)
        kb.add_flag("f")
        kb.set_thread_body(0, [
            "addi r1, zero, 1",
            "call f_set",
            "addi r1, zero, 1",
            "call f_wait",
            "lw   r4, f(zero)",     # bits must be cleared now
            "out  r4",
            "halt",
        ])
        assert record_golden(kb.build("flagclear")).output == bytes([0])

    def test_buffer_accessors(self):
        kb = KernelBuilder(n_threads=1)
        kb.add_buffer("b", 3, init=[5, 6, 7])
        kb.set_thread_body(0, [
            "addi r1, zero, 1",
            "addi r2, zero, 99",
            "call b_put",
            "addi r1, zero, 1",
            "call b_get",
            "out  r1",
            "addi r1, zero, 2",
            "call b_get",
            "out  r1",
            "halt",
        ])
        assert record_golden(kb.build("buf")).output == bytes([99, 7])

    def test_protected_word_survives_corruption(self):
        kb = KernelBuilder(n_threads=1, protect=True)
        kb.add_word("w", init=9, protected=True)
        kb.set_thread_body(0, ["call w_load", "out r1", "halt"])
        program = kb.build("pword")
        from repro.isa import Machine
        machine = Machine(program)
        machine.flip_bit(program.symbol("w"), 1)
        machine.run(100_000)
        assert machine.serial == bytes([9])
        assert machine.detections


class TestLayout:
    def test_tcb_stride_depends_on_protection(self):
        plain = KernelBuilder(n_threads=2, protect=False)
        prot = KernelBuilder(n_threads=2, protect=True)
        assert plain.tcb_stride == TCB_WORDS * 4
        assert prot.tcb_stride == (2 * TCB_WORDS + 1) * 4

    def test_context_fits_in_tcb(self):
        assert CONTEXT_WORDS <= TCB_WORDS
        assert SYNC_WORDS == 4

    def test_ram_sized_to_data_exactly(self):
        program = two_thread_pingpong()
        assert program.ram_size == len(program.data)
