"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "P(k faults)" in out

    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "hi" in out
        assert "bin_sem2" in out
        assert "sync2-sumdmr" in out

    def test_scan_hi(self, capsys):
        main(["scan", "hi"])
        out = capsys.readouterr().out
        assert "62.50%" in out
        assert "F: 48" in out

    def test_scan_parallel_matches_serial(self, capsys):
        main(["scan", "hi"])
        serial = capsys.readouterr().out
        main(["scan", "hi", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_scan_emits_progress_eta(self, capsys):
        main(["scan", "hi"])
        err = capsys.readouterr().err
        assert "ETA" in err and "classes:" in err

    def test_scan_sampling_mode(self, capsys):
        main(["scan", "counter", "--samples", "50", "--seed", "1"])
        captured = capsys.readouterr()
        assert "sampled 50 faults" in captured.out
        assert "estimated failure count" in captured.out
        assert "experiments:" in captured.err

    def test_scan_register_domain(self, capsys):
        main(["scan", "hi", "--domain", "register"])
        out = capsys.readouterr().out
        assert "[register domain]" in out
        assert "register faults" in out
        assert "weighted coverage" in out
        assert "failure count F" in out

    def test_scan_register_parallel_matches_serial(self, capsys):
        main(["scan", "hi", "--domain", "register"])
        serial = capsys.readouterr().out
        main(["scan", "hi", "--domain", "register", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_scan_register_sampling_mode(self, capsys):
        main(["scan", "hi", "--domain", "register", "--samples", "60",
              "--seed", "2"])
        out = capsys.readouterr().out
        assert "[register domain]" in out
        assert "sampled 60 faults" in out
        assert "estimated failure count" in out

    def test_scan_defaults_to_memory_domain(self, capsys):
        main(["scan", "hi"])
        out = capsys.readouterr().out
        assert "[memory domain]" in out

    def test_scan_rejects_unknown_domain(self):
        with pytest.raises(SystemExit):
            main(["scan", "hi", "--domain", "cache"])

    def test_list_sizes_shows_both_domains(self, capsys):
        main(["list", "--sizes"])
        out = capsys.readouterr().out
        assert "w_mem=" in out
        assert "w_reg=" in out

    def test_render_hi(self, capsys):
        main(["render", "hi"])
        out = capsys.readouterr().out
        assert "W##R" in out
        assert "memory w=" in out and "register w=" in out

    def test_fig3(self, capsys):
        main(["fig3"])
        out = capsys.readouterr().out
        assert "62.5%" in out and "75.0%" in out

    def test_unknown_program_exits_with_hint(self):
        with pytest.raises(SystemExit, match="unknown program"):
            main(["scan", "nonsense"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
