"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "P(k faults)" in out

    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "hi" in out
        assert "bin_sem2" in out
        assert "sync2-sumdmr" in out

    def test_scan_hi(self, capsys):
        main(["scan", "hi"])
        out = capsys.readouterr().out
        assert "62.50%" in out
        assert "F: 48" in out

    def test_scan_parallel_matches_serial(self, capsys):
        main(["scan", "hi"])
        serial = capsys.readouterr().out
        main(["scan", "hi", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_scan_emits_progress_eta(self, capsys):
        main(["scan", "hi"])
        err = capsys.readouterr().err
        assert "ETA" in err and "classes:" in err

    def test_scan_sampling_mode(self, capsys):
        main(["scan", "counter", "--samples", "50", "--seed", "1"])
        captured = capsys.readouterr()
        assert "sampled 50 faults" in captured.out
        assert "estimated failure count" in captured.out
        assert "experiments:" in captured.err

    def test_scan_register_domain(self, capsys):
        main(["scan", "hi", "--domain", "register"])
        out = capsys.readouterr().out
        assert "[register domain]" in out
        assert "register faults" in out
        assert "weighted coverage" in out
        assert "failure count F" in out

    def test_scan_register_parallel_matches_serial(self, capsys):
        main(["scan", "hi", "--domain", "register"])
        serial = capsys.readouterr().out
        main(["scan", "hi", "--domain", "register", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_scan_register_sampling_mode(self, capsys):
        main(["scan", "hi", "--domain", "register", "--samples", "60",
              "--seed", "2"])
        out = capsys.readouterr().out
        assert "[register domain]" in out
        assert "sampled 60 faults" in out
        assert "estimated failure count" in out

    def test_scan_defaults_to_memory_domain(self, capsys):
        main(["scan", "hi"])
        out = capsys.readouterr().out
        assert "[memory domain]" in out

    def test_scan_rejects_unknown_domain(self):
        with pytest.raises(SystemExit):
            main(["scan", "hi", "--domain", "cache"])

    def test_list_sizes_shows_every_registered_domain(self, capsys):
        from repro.faultspace import DOMAINS

        main(["list", "--sizes"])
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            for name in DOMAINS:
                assert f"w_{name}=" in line, (name, line)

    def test_list_sizes_match_domain_fault_spaces(self, capsys):
        from repro.campaign import record_golden
        from repro.faultspace import DOMAINS
        from repro.programs import hi

        main(["list", "--sizes"])
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines()
                    if ln.startswith("hi "))
        golden = record_golden(hi.baseline())
        for name, domain in DOMAINS.items():
            expected = domain.fault_space(golden).size
            assert f"w_{name}={expected}" in line

    def test_render_hi(self, capsys):
        main(["render", "hi"])
        out = capsys.readouterr().out
        assert "W##R" in out
        assert "memory w=" in out and "register w=" in out

    def test_fig3(self, capsys):
        main(["fig3"])
        out = capsys.readouterr().out
        assert "62.5%" in out and "75.0%" in out

    def test_unknown_program_exits_with_hint(self):
        with pytest.raises(SystemExit, match="unknown program"):
            main(["scan", "nonsense"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliJournal:
    """The scan --journal / resume surface."""

    def test_scan_with_journal_then_resume_skips_work(self, capsys,
                                                      tmp_path):
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--journal", journal])
        first = capsys.readouterr().out
        main(["scan", "hi", "--journal", journal])
        second = capsys.readouterr().out
        assert "resumed from journal" in second
        assert "0 executed" in second
        # The campaign numbers themselves are identical either way.
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_scan_fresh_composes_from_section_store(self, capsys,
                                                    tmp_path):
        """--fresh discards the campaign's journal rows, but the shared
        section store survives, so the rerun composes instead of
        re-executing (and says so)."""
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--journal", journal])
        capsys.readouterr()
        main(["scan", "hi", "--journal", journal, "--fresh"])
        out = capsys.readouterr().out
        assert "composed from section store" in out

    def test_resume_lists_campaigns(self, capsys, tmp_path):
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--journal", journal])
        main(["scan", "hi", "--journal", journal, "--domain", "register",
              "--samples", "40"])
        capsys.readouterr()
        main(["resume", "--journal", journal])
        out = capsys.readouterr().out
        assert "2 campaign(s)" in out
        assert "full-scan" in out and "sampling" in out
        assert "[memory domain]" in out and "[register domain]" in out

    def test_resume_with_program_continues_the_campaign(self, capsys,
                                                        tmp_path):
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--journal", journal])
        baseline = capsys.readouterr().out
        main(["resume", "hi", "--journal", journal])
        out = capsys.readouterr().out
        assert "resumed from journal" in out
        assert baseline.splitlines()[-2:] == out.splitlines()[-2:]

    def test_resume_lists_empty_journal(self, capsys, tmp_path):
        journal = str(tmp_path / "empty.sqlite")
        main(["resume", "--journal", journal])
        out = capsys.readouterr().out
        assert "no campaigns" in out

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit):
            main(["resume", "hi"])

    def test_robustness_flags_are_accepted(self, capsys):
        main(["scan", "hi", "--jobs", "2", "--shard-timeout", "30",
              "--max-retries", "1"])
        out = capsys.readouterr().out
        assert "weighted coverage" in out


class TestCliCompare:
    """The `compare` incremental sweep and `journal` maintenance."""

    ARGS = ["compare", "hi", "hi-dft4", "hi-mem2"]

    def test_compare_prints_the_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "variant" in out and "ratio" in out
        assert "baseline" in out
        assert "hi-dft4" in out and "hi-mem2" in out

    def test_compare_warm_sweep_is_identical(self, capsys, tmp_path):
        journal = str(tmp_path / "j.sqlite")
        cold_csv = tmp_path / "cold.csv"
        warm_csv = tmp_path / "warm.csv"
        assert main(self.ARGS + ["--journal", journal,
                                 "--csv", str(cold_csv)]) == 0
        cold = capsys.readouterr().out
        assert main(self.ARGS + ["--journal", journal,
                                 "--csv", str(warm_csv)]) == 0
        warm = capsys.readouterr().out
        assert warm_csv.read_bytes() == cold_csv.read_bytes()
        # The comparison tables agree line for line.
        table = [line for line in cold.splitlines()
                 if line.startswith(("variant", "hi"))]
        assert table and all(line in warm for line in table)

    def test_compare_caches_summaries_in_the_journal(self, tmp_path):
        from repro.campaign import ExperimentJournal, JournalCache
        from repro.programs import hi

        journal = str(tmp_path / "j.sqlite")
        assert main(["compare", "hi", "hi-dft4",
                     "--journal", journal]) == 0
        with ExperimentJournal(journal) as handle:
            cached = JournalCache(handle).load(hi.baseline())
        assert cached is not None
        assert cached.program_name == "hi"

    def test_compare_rejects_sampling(self):
        with pytest.raises(SystemExit, match="--samples"):
            main(["compare", "hi", "hi-dft4", "--samples", "10"])

    def test_compare_rejects_duplicates(self):
        with pytest.raises(SystemExit, match="duplicate"):
            main(["compare", "hi", "hi"])

    def test_compare_unknown_variant_exits_with_hint(self):
        with pytest.raises(SystemExit, match="unknown program"):
            main(["compare", "hi", "nonsense"])

    def test_guarded_family_is_registered(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for name in ("guarded", "guarded-sum", "guarded-sumdmr",
                     "guarded-tmr"):
            assert name in out

    def test_journal_lists_campaigns_and_sections(self, capsys,
                                                  tmp_path):
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--journal", journal])
        capsys.readouterr()
        assert main(["journal", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "1 campaign(s)" in out
        assert "section store:" in out
        assert "fingerprint=" in out
        assert "bytes on disk" in out

    def test_journal_gc_reports_freed_sections(self, capsys, tmp_path):
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--journal", journal])
        capsys.readouterr()
        assert main(["journal", "--journal", journal, "--gc"]) == 0
        out = capsys.readouterr().out
        assert "gc: dropped 0 orphaned section(s)" in out


class TestCliParallelCombos:
    def test_register_sampling_parallel_matches_serial(self, capsys):
        """scan --domain register --samples --jobs, previously untested."""
        main(["scan", "hi", "--domain", "register", "--samples", "60",
              "--seed", "2"])
        serial = capsys.readouterr().out
        main(["scan", "hi", "--domain", "register", "--samples", "60",
              "--seed", "2", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_memory_sampling_parallel_matches_serial(self, capsys):
        main(["scan", "counter", "--samples", "50", "--seed", "1"])
        serial = capsys.readouterr().out
        main(["scan", "counter", "--samples", "50", "--seed", "1",
              "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_register_scan_journal_parallel_resume(self, capsys,
                                                   tmp_path):
        journal = str(tmp_path / "j.sqlite")
        main(["scan", "hi", "--domain", "register"])
        baseline = capsys.readouterr().out
        main(["scan", "hi", "--domain", "register", "--journal", journal])
        capsys.readouterr()
        main(["scan", "hi", "--domain", "register", "--journal", journal,
              "--jobs", "2"])
        resumed = capsys.readouterr().out
        assert "resumed from journal" in resumed
        assert baseline.splitlines()[-2:] == resumed.splitlines()[-2:]


class TestCliDist:
    """`scan --dist`, the worker command, and incomplete exit codes."""

    def test_scan_dist_matches_serial_histogram(self, capsys):
        assert main(["scan", "hi"]) == 0
        serial = capsys.readouterr().out
        assert main(["scan", "hi", "--dist", "2"]) == 0
        dist = capsys.readouterr().out
        # With only 2 work units a fast worker may drain both shards
        # before the second one connects, so 1 or 2 workers can appear.
        assert re.search(r"distributed across [12] worker\(s\)", dist)

        def histogram(text):
            skip = ("execution:", "  complete:", "  INCOMPLETE",
                    "  distributed across", "  worker retries")
            return [line for line in text.splitlines()
                    if not line.startswith(skip)]

        assert histogram(dist) == histogram(serial)

    def test_scan_dist_refuses_jobs(self):
        with pytest.raises(SystemExit, match="--dist"):
            main(["scan", "hi", "--dist", "2", "--jobs", "2"])

    def test_worker_connect_must_be_host_port(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["worker", "--connect", "nonsense"])

    def test_incomplete_scan_exits_nonzero(self, monkeypatch, capsys):
        """A campaign that lost shards for good must not exit 0 — CI
        pipelines gate on the exit code, not on parsing the report."""
        import json as json_mod

        monkeypatch.setenv("REPRO_CHAOS", json_mod.dumps(
            {"die": [[0, 0]], "die_delay": 0.2}))
        status = main(["scan", "memcopy", "--jobs", "2",
                       "--max-retries", "0"])
        out = capsys.readouterr().out
        assert status == 3
        assert "INCOMPLETE" in out
