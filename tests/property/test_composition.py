"""Property-based test of composition invariance.

Hypothesis generates a micro-program, mutates its *entry section* with
a semantics-preserving commutative operand swap (``add r4, r5, r6`` vs
``add r4, r6, r5`` — both registers are zero, so every machine state is
bit-identical), and runs the mutant against a journal warmed by the
original.  The invariant: the composed campaign equals a cold scan of
the mutant bit for bit, while re-executing *only* the coordinates the
changed section owns — everything else composes from the store.

The generator sweeps program family × size × fault domain × jobs, the
combinations no single hand-written test enumerates.
"""

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import record_golden, run_full_scan
from repro.faultspace import build_section_map
from repro.isa.assembler import assemble
from repro.programs import micro

#: family name -> (program factory, generated size range).  All micro
#: families open with a ``start:`` label, which is where the mutated
#: entry instruction goes.
FAMILIES = {
    "counter": (micro.counter, (1, 3)),
    "memcopy": (micro.memcopy, (1, 3)),
    "checksum": (micro.checksum_loop, (1, 2)),
}

_GOLDEN_CACHE: dict = {}


def _mutant_pair(family: str, size: int):
    """Golden runs of the original-shape and entry-mutated programs.

    Both get the extra entry instruction (so their traces align); they
    differ only in the operand order of that one instruction, which
    changes the entry block's code digest and nothing else.
    """
    key = (family, size)
    if key not in _GOLDEN_CACHE:
        program = FAMILIES[family][0](size)
        base = program.source.replace(
            "start:", "start: add  r4, r5, r6\n      ", 1)
        swapped = program.source.replace(
            "start:", "start: add  r4, r6, r5\n      ", 1)
        _GOLDEN_CACHE[key] = (
            record_golden(assemble(base, name=f"{family}{size}-a",
                                   ram_size=program.ram_size)),
            record_golden(assemble(swapped, name=f"{family}{size}-b",
                                   ram_size=program.ram_size)),
        )
    return _GOLDEN_CACHE[key]


@st.composite
def pairs(draw):
    family = draw(st.sampled_from(sorted(FAMILIES)))
    low, high = FAMILIES[family][1]
    size = draw(st.integers(min_value=low, max_value=high))
    return _mutant_pair(family, size)


SETTINGS = settings(max_examples=6, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestCompositionInvariance:
    @SETTINGS
    @given(pair=pairs(),
           domain=st.sampled_from(["memory", "register"]),
           jobs=st.sampled_from([None, 2]))
    def test_mutating_one_section_recomputes_only_that_section(
            self, pair, domain, jobs, tmp_path_factory):
        golden_a, golden_b = pair
        journal = tmp_path_factory.mktemp("store") / "journal.sqlite"
        run_full_scan(golden_a, domain=domain, jobs=jobs,
                      journal=journal)
        cold = run_full_scan(golden_b, domain=domain, jobs=jobs,
                             keep_records=True)
        warm = run_full_scan(golden_b, domain=domain, jobs=jobs,
                             journal=journal, keep_records=True)

        # Composition soundness: the incremental result is the cold one.
        assert warm == cold
        assert warm.weighted_counts() == cold.weighted_counts()

        # Incrementality: exactly the changed section's classes ran.
        first = build_section_map(golden_b, domain).sections[0]
        changed = sum(
            1 for interval in warm.partition.live_classes()
            if interval.injection_slot <= first.last_slot)
        assert warm.execution.executed == changed
        assert warm.execution.resumed \
            == warm.execution.total_units - changed
        assert warm.execution.composed_hits \
            == warm.execution.resumed * warm.domain.bits
