"""Property-based invariants for the worker supervision state machine.

The supervisor is a pure state machine (no clock, no I/O — ``now`` is
an argument), which makes it ideal Hypothesis territory: generate an
arbitrary interleaving of successes, failures, explicit quarantines and
time jumps, and check the invariants the distributed coordinator's
correctness rests on:

* a permanent (byzantine) quarantine is absorbing — nothing ever
  readmits the worker;
* a timed quarantine graduates to probation exactly at expiry, never
  before;
* probation is strict — one failure re-quarantines immediately, the
  configured number of successes restores health with a clean score;
* quarantine durations escalate geometrically and are capped;
* offense counts are monotone, scores never go negative, and every
  snapshot is JSON-serializable (telemetry must never crash).
"""

import json
import math

from hypothesis import given, settings, strategies as st

from repro.campaign.dist.supervision import (
    HEALTHY,
    PROBATION,
    QUARANTINED,
    SupervisionPolicy,
    WorkerSupervisor,
)

STATUSES = {HEALTHY, QUARANTINED, PROBATION}


def policies():
    return st.builds(
        SupervisionPolicy,
        failure_threshold=st.floats(1.0, 5.0),
        failure_halflife=st.floats(0.1, 60.0),
        quarantine_seconds=st.floats(0.1, 5.0),
        quarantine_factor=st.floats(1.0, 3.0),
        max_quarantine_seconds=st.floats(1.0, 20.0),
        probation_successes=st.integers(1, 3),
    )


#: One step: an event applied to the worker, after a time jump.
events = st.tuples(
    st.floats(0.0, 10.0),  # dt before the event
    st.one_of(
        st.just(("success",)),
        st.tuples(st.just("failure"), st.floats(0.5, 3.0)),
        st.tuples(st.just("quarantine"), st.booleans()),
        st.just(("check",)),
    ),
)


@given(policy=policies(), steps=st.lists(events, max_size=60))
@settings(max_examples=200, deadline=None)
def test_state_machine_invariants(policy, steps):
    sup = WorkerSupervisor(policy=policy)
    name = "w"
    now = 0.0
    ever_permanent = False
    last_offenses = 0
    for dt, event in steps:
        now += dt
        if event[0] == "success":
            sup.record_success(name, now)
        elif event[0] == "failure":
            sup.record_failure(name, now, weight=event[1])
        elif event[0] == "quarantine":
            sup.quarantine(name, now, permanent=event[1],
                           reason="forced")
            ever_permanent = ever_permanent or event[1]
        else:
            sup.allowed(name, now)

        state = sup.state(name)
        # Status domain and score sanity.
        assert state.status in STATUSES
        assert state.score >= 0.0
        # Offense counts are monotone.
        assert state.offenses >= last_offenses
        last_offenses = state.offenses
        # A permanent quarantine is absorbing: no later event — not
        # even another quarantine call — may readmit the worker.
        if ever_permanent:
            assert state.status == QUARANTINED
            assert state.permanent
            assert math.isinf(state.quarantined_until)
            assert not sup.allowed(name, now)
            assert sup.retry_after(name, now) > 0.0
        # A timed quarantine never admits before its expiry...
        if state.status == QUARANTINED and not state.permanent \
                and now < state.quarantined_until:
            assert not sup.allowed(name, now)
            assert sup.retry_after(name, now) > 0.0
        # ...and every quarantine duration honors the escalation cap.
        if state.status == QUARANTINED and not state.permanent:
            assert (state.quarantined_until - now
                    <= policy.max_quarantine_seconds + 1e-9)
        # Telemetry must always serialize (inf is mapped to None).
        snapshot = sup.snapshot()
        json.dumps(snapshot)
        assert all(entry["status"] in STATUSES for entry in snapshot)
    # The quarantined() listing agrees with per-worker status.
    assert (name in sup.quarantined()) \
        == (sup.state(name).status == QUARANTINED)


@given(policy=policies(), dt=st.floats(0.001, 100.0))
@settings(max_examples=100, deadline=None)
def test_quiet_time_only_decays_the_score(policy, dt):
    sup = WorkerSupervisor(policy=policy)
    sup.record_failure("w", 0.0, weight=policy.failure_threshold / 2)
    before = sup.state("w").score
    sup.record_success("w", dt)
    after = sup.state("w").score
    assert 0.0 <= after <= before
    # Exactly exponential: one half-life halves the score.
    expected = before * 0.5 ** (dt / policy.failure_halflife)
    assert math.isclose(after, expected, rel_tol=1e-9)


@given(policy=policies())
@settings(max_examples=100, deadline=None)
def test_escalation_is_monotone_and_capped(policy):
    durations = [policy.quarantine_for(n) for n in range(1, 8)]
    assert all(b >= a - 1e-12 for a, b in zip(durations, durations[1:]))
    assert all(d <= policy.max_quarantine_seconds for d in durations)
    assert durations[0] <= max(policy.quarantine_seconds,
                               policy.max_quarantine_seconds)


@given(policy=policies())
@settings(max_examples=50, deadline=None)
def test_quarantine_probation_healthy_roundtrip(policy):
    """The canonical lifecycle: trip → wait out → probation → healthy."""
    sup = WorkerSupervisor(policy=policy)
    sup.quarantine("w", 0.0, reason="tripped")
    state = sup.state("w")
    assert state.status == QUARANTINED
    assert not sup.allowed("w", state.quarantined_until - 1e-6)
    # Expiry graduates to probation (lazily, via allowed()).
    release = state.quarantined_until + 1e-6
    assert sup.allowed("w", release)
    assert state.status == PROBATION
    assert state.probation_left == policy.probation_successes
    # The configured number of successes restores health, clean score.
    for index in range(policy.probation_successes):
        assert state.status == PROBATION
        sup.record_success("w", release + index)
    assert state.status == HEALTHY
    assert state.score == 0.0


@given(policy=policies())
@settings(max_examples=50, deadline=None)
def test_probation_failure_requarantines_with_escalation(policy):
    sup = WorkerSupervisor(policy=policy)
    sup.quarantine("w", 0.0, reason="first")
    state = sup.state("w")
    release = state.quarantined_until + 1e-6
    assert sup.allowed("w", release)
    # One failure during probation: no threshold, no grace.
    tripped = sup.record_failure("w", release, weight=0.001)
    assert tripped
    assert state.status == QUARANTINED
    assert state.offenses == 2
    expected = policy.quarantine_for(2)
    assert math.isclose(state.quarantined_until - release, expected,
                        rel_tol=1e-9)
