"""Property-based tests for the def/use and campaign invariants.

Hypothesis generates micro-programs (family × size × fault domain) and
checks the invariants the paper's methodology rests on:

* the def/use equivalence classes *partition* the raw fault space —
  class weights sum to ``w`` and every raw coordinate belongs to exactly
  one covering class;
* the pruned scan is exact — ``weighted_failure_count`` (and every
  single coordinate's outcome) equals the brute-force ground truth;
* sampling shares experiments without changing any outcome;
* a journaled campaign interrupted at an arbitrary point resumes to a
  bit-for-bit identical result.

Examples are deliberately few (the programs are real simulations, not
pure functions); the value is in the generator exploring family/size/
domain combinations no hand-written test enumerates.
"""

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import (
    ExecutorConfig,
    record_golden,
    run_brute_force,
    run_full_scan,
    run_sampling,
)
from repro.faultspace import get_domain
from repro.faultspace.defuse import LIVE
from repro.programs import micro

#: family name -> (program factory, generated size range)
FAMILIES = {
    "counter": (micro.counter, (1, 3)),
    "memcopy": (micro.memcopy, (1, 3)),
    "checksum": (micro.checksum_loop, (1, 2)),
}

_GOLDEN_CACHE: dict = {}


def _golden(family: str, size: int):
    """Golden runs are deterministic; cache them across examples."""
    key = (family, size)
    if key not in _GOLDEN_CACHE:
        _GOLDEN_CACHE[key] = record_golden(FAMILIES[family][0](size))
    return _GOLDEN_CACHE[key]


@st.composite
def programs(draw):
    family = draw(st.sampled_from(sorted(FAMILIES)))
    low, high = FAMILIES[family][1]
    size = draw(st.integers(min_value=low, max_value=high))
    return _golden(family, size)


domains = st.sampled_from(["memory", "register"])

SETTINGS = settings(max_examples=10, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestPartitionInvariants:
    @SETTINGS
    @given(golden=programs(), domain=domains)
    def test_class_weights_partition_the_fault_space(self, golden,
                                                     domain):
        """Σ class weights == w = Δt · Δm (Pitfall 1's precondition)."""
        domain = get_domain(domain)
        partition = domain.build_partition(golden)
        space = domain.fault_space(golden)
        assert partition.total_weight == space.size
        live_weight = sum(iv.weight_bits
                          for iv in partition.live_classes())
        assert live_weight + partition.known_no_effect_weight \
            == space.size

    @SETTINGS
    @given(golden=programs(), domain=domains)
    def test_every_coordinate_has_exactly_one_covering_class(
            self, golden, domain):
        """locate() is total and consistent; together with the weight
        sum above this proves the classes are disjoint and exhaustive."""
        domain = get_domain(domain)
        partition = domain.build_partition(golden)
        space = domain.fault_space(golden)
        for coord in space.iter_coordinates():
            interval = partition.locate(coord)
            assert interval.covers(coord.slot)
            assert domain.axis_of(interval) \
                == domain.coordinate_axis(coord)

    @SETTINGS
    @given(golden=programs(), domain=domains)
    def test_live_class_experiments_match_domain_width(self, golden,
                                                       domain):
        domain = get_domain(domain)
        partition = domain.build_partition(golden)
        for interval in partition.live_classes():
            experiments = interval.experiments()
            assert len(experiments) == domain.bits
            assert [c.bit for c in experiments] \
                == list(range(domain.bits))


class TestScanGroundTruth:
    @SETTINGS
    @given(golden=programs(), domain=domains)
    def test_pruned_scan_equals_brute_force_everywhere(self, golden,
                                                       domain):
        """The central soundness claim: def/use pruning changes no
        outcome, so the weighted failure count IS the ground truth."""
        scan = run_full_scan(golden, domain=domain)
        brute = run_brute_force(golden, domain=domain)
        failures = sum(1 for outcome in brute.outcomes.values()
                       if outcome.is_failure)
        assert scan.weighted_failure_count() == failures
        for coord, outcome in brute.outcomes.items():
            assert scan.outcome_of(coord) == outcome

    @SETTINGS
    @given(golden=programs(), domain=domains)
    def test_weighted_counts_sum_to_fault_space_size(self, golden,
                                                     domain):
        scan = run_full_scan(golden, domain=domain)
        assert sum(scan.weighted_counts().values()) \
            == scan.fault_space_size
        assert sum(scan.raw_counts().values()) \
            == scan.experiments_conducted


class TestSamplingInvariants:
    @SETTINGS
    @given(golden=programs(), seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 60))
    def test_sampled_outcomes_agree_with_the_full_scan(self, golden,
                                                       seed, n):
        """Experiment sharing across samples never changes an outcome."""
        scan = run_full_scan(golden)
        result = run_sampling(golden, n, seed=seed)
        partition = result.partition
        for sample, outcome in result.samples:
            if sample.class_kind != LIVE:
                assert not outcome.is_failure
                continue
            interval = partition.locate(sample.coordinate)
            representative = result.domain.coordinate(
                interval.injection_slot,
                result.domain.axis_of(interval),
                sample.coordinate.bit)
            assert outcome == scan.outcome_of(representative)
        assert result.experiments_conducted <= n


class TestConvergenceInvariant:
    @SETTINGS
    @given(golden=programs(), domain=domains)
    def test_early_exit_changes_no_outcome(self, golden, domain):
        """Convergence detection (ladder + masked probes + criticality
        pre-skip) is pure speed: with it on or off, the full scan is
        identical — results, records, CSV bytes."""
        on = run_full_scan(golden, domain=domain, keep_records=True,
                           config=ExecutorConfig(use_convergence=True))
        off = run_full_scan(golden, domain=domain, keep_records=True,
                            config=ExecutorConfig(use_convergence=False))
        assert on == off
        assert off.execution.convergence_hits == 0
        assert off.execution.slice_hits == 0

    @SETTINGS
    @given(golden=programs(), domain=domains,
           seed=st.integers(0, 2**32 - 1))
    def test_early_exit_changes_no_sample(self, golden, domain, seed):
        on = run_sampling(golden, 40, seed=seed, domain=domain,
                          config=ExecutorConfig(use_convergence=True))
        off = run_sampling(golden, 40, seed=seed, domain=domain,
                           config=ExecutorConfig(use_convergence=False))
        assert on == off


class TestResumeProperty:
    @SETTINGS
    @given(golden=programs(), kill_after=st.integers(1, 200),
           seed=st.integers(0, 1000))
    def test_resume_after_arbitrary_interrupt_is_identical(
            self, golden, kill_after, seed, tmp_path_factory):
        """Interrupt a journaled scan at a generated point; the resumed
        result must be bit-for-bit the uninterrupted one."""
        journal = tmp_path_factory.mktemp("journal") / "j.sqlite"
        baseline = run_full_scan(golden, keep_records=True)

        class Kill(Exception):
            pass

        def bomb(done, total):
            if done >= kill_after:
                raise Kill

        try:
            run_full_scan(golden, journal=journal, keep_records=True,
                          progress=bomb)
            interrupted = False
        except Kill:
            interrupted = True
        resumed = run_full_scan(golden, journal=journal,
                                keep_records=True)
        assert resumed == baseline
        if interrupted:
            assert resumed.execution.resumed >= min(
                kill_after, resumed.execution.total_units)
