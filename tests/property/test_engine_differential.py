"""Property-based differential fuzzing of the execution engines.

Hypothesis generates random (but always-halting, fault-free-safe)
assembly programs plus random fault injections, and checks that the
interpreter, the template-JIT engine and the lockstep batch engine
agree on *everything observable*: final machine state, outcome class,
cycle count and trap identity.  Hand-written differential tests cover
the known-tricky cases; the generator's job is to find the register /
immediate / opcode / control-flow combinations nobody thought of.

Register conventions of the generated programs (so the fault-free run
can never trap):

* ``r1``–``r4``  scratch, freely written by random ALU ops and loads;
* ``r5``         divisor, seeded non-zero and never written;
* ``r7``         loop counter of the optional bounded loop;
* loads/stores   use ``r0`` as base with in-range aligned offsets.

Injected faults are unconstrained — they may trap, diverge, hang or
vanish; the engines must merely tell the same story.
"""

import pytest

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.campaign import ExecutorConfig, record_golden
from repro.engine.compiled import CompiledMachine
from repro.faultspace import FaultCoordinate
from repro.faultspace.registers import RegisterFaultCoordinate
from repro.isa import CPUException, Machine, assemble

RAM_SIZE = 32

_ALU_R = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
          "slt", "sltu", "mul"]
_ALU_I = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_SHIFT_I = ["slli", "srli", "srai"]


@st.composite
def _body_ops(draw, n_min, n_max, detect=True):
    """Random straight-line instructions honouring the register plan."""
    kinds = ["alu_r", "alu_r", "alu_i", "shift", "div", "load",
             "store", "out", "lui", "nop"]
    if detect:
        # record_golden() rejects fault-free detections, so executor
        # fuzzing must generate detect-free programs.
        kinds.append("detect")
    lines = []
    for _ in range(draw(st.integers(n_min, n_max))):
        kind = draw(st.sampled_from(kinds))
        rd = draw(st.integers(1, 4))
        rs1 = draw(st.integers(0, 5))
        rs2 = draw(st.integers(0, 5))
        if kind == "alu_r":
            op = draw(st.sampled_from(_ALU_R))
            lines.append(f"{op} r{rd}, r{rs1}, r{rs2}")
        elif kind == "alu_i":
            op = draw(st.sampled_from(_ALU_I))
            imm = draw(st.integers(-128, 255))
            lines.append(f"{op} r{rd}, r{rs1}, {imm}")
        elif kind == "shift":
            op = draw(st.sampled_from(_SHIFT_I))
            imm = draw(st.integers(0, 31))
            lines.append(f"{op} r{rd}, r{rs1}, {imm}")
        elif kind == "div":
            op = draw(st.sampled_from(["divu", "remu"]))
            lines.append(f"{op} r{rd}, r{rs1}, r5")
        elif kind == "load":
            op, width = draw(st.sampled_from(
                [("lw", 4), ("lh", 2), ("lhu", 2), ("lb", 1),
                 ("lbu", 1)]))
            offset = width * draw(
                st.integers(0, RAM_SIZE // width - 1))
            lines.append(f"{op} r{rd}, {offset}(r0)")
        elif kind == "store":
            op, width = draw(st.sampled_from(
                [("sw", 4), ("sh", 2), ("sb", 1)]))
            offset = width * draw(
                st.integers(0, RAM_SIZE // width - 1))
            lines.append(f"{op} r{rs1}, {offset}(r0)")
        elif kind == "out":
            lines.append(f"out r{draw(st.integers(1, 4))}")
        elif kind == "detect":
            lines.append(f"detect {draw(st.integers(0, 7))}")
        elif kind == "lui":
            lines.append(f"lui r{rd}, {draw(st.integers(0, 0xFFFF))}")
        else:
            lines.append("nop")
    return lines


@st.composite
def fuzz_programs(draw, detect=True):
    lines = []
    for reg in range(1, 5):
        lines.append(f"li r{reg}, {draw(st.integers(-100, 70000))}")
    lines.append(f"li r5, {draw(st.integers(1, 1000))}")
    lines.extend(draw(_body_ops(2, 8, detect=detect)))
    if draw(st.booleans()):
        lines.append(f"li r7, {draw(st.integers(2, 5))}")
        lines.append("loop:")
        lines.extend(draw(_body_ops(1, 4, detect=detect)))
        lines.append("addi r7, r7, -1")
        lines.append("bnez r7, loop")
    lines.extend(draw(_body_ops(0, 3, detect=detect)))
    lines.append("halt")
    return assemble("\n".join(lines), name="fuzz", ram_size=RAM_SIZE)


def _observe(machine, limit):
    trap = None
    try:
        machine.run(limit)
    except CPUException as exc:
        trap = (type(exc).__name__, str(exc), exc.pc, exc.cycle)
    return {
        "pc": machine.pc, "cycle": machine.cycle,
        "halted": machine.halted, "diverged": machine.diverged,
        "regs": list(machine.regs), "ram": bytes(machine.ram),
        "serial": bytes(machine.serial),
        "detections": list(machine.detections),
        "digest": machine.state_digest(), "trap": trap,
    }


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=fuzz_programs(), data=st.data())
def test_jit_matches_interpreter_under_injection(program, data):
    """Machine-level: full state + trap identity after a random flip."""
    golden = Machine(program)
    golden.run(100_000)
    assert golden.halted, "generated program must halt fault-free"
    total, serial = golden.cycle, bytes(golden.serial)

    slot = data.draw(st.integers(1, total), label="slot")
    if data.draw(st.booleans(), label="memory_fault"):
        addr = data.draw(st.integers(0, RAM_SIZE - 1), label="addr")
        bit = data.draw(st.integers(0, 7), label="bit")
        fault = lambda m: m.flip_bit(addr, bit)  # noqa: E731
    else:
        reg = data.draw(st.integers(1, 15), label="reg")
        bit = data.draw(st.integers(0, 31), label="regbit")
        fault = lambda m: m.flip_register_bit(reg, bit)  # noqa: E731
    limit = 4 * total + 100
    observations = []
    for cls in (Machine, CompiledMachine):
        machine = cls(program, oracle=serial)
        machine.run_to_cycle(slot - 1)
        if not machine.halted:
            fault(machine)
        observations.append(_observe(machine, limit))
    assert observations[0] == observations[1]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=fuzz_programs(detect=False), data=st.data())
@pytest.mark.parametrize("domain", ["memory", "register"])
def test_executors_agree_on_records(domain, program, data):
    """Executor-level: all three engines emit identical records.

    One slot gets a burst of >= 8 coordinates so the batch engine's
    lockstep path (not just its scalar fallback) is exercised.
    """
    golden = record_golden(program)
    burst_slot = data.draw(st.integers(1, golden.cycles),
                           label="burst_slot")

    def coordinate(slot):
        if domain == "memory":
            return FaultCoordinate(
                slot=slot,
                addr=data.draw(st.integers(0, RAM_SIZE - 1)),
                bit=data.draw(st.integers(0, 7)))
        return RegisterFaultCoordinate(
            slot=slot,
            reg=data.draw(st.integers(1, 15)),
            bit=data.draw(st.integers(0, 31)))

    coords = [coordinate(burst_slot) for _ in range(10)]
    for _ in range(data.draw(st.integers(0, 4), label="extra")):
        coords.append(
            coordinate(data.draw(st.integers(1, golden.cycles))))
    coords.sort(key=lambda c: c.slot)

    records = {}
    for engine in ("interp", "compiled", "batch"):
        executor = ExecutorConfig(engine=engine,
                                  domain=domain).build(golden)
        records[engine] = executor.run_many(coords)
    assert records["compiled"] == records["interp"]
    assert records["batch"] == records["interp"]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=fuzz_programs(detect=False), data=st.data())
def test_fused_dispatch_matches_per_instruction_lanes(program, data):
    """Lane-level: fused kernels leave every lane bit-identical.

    The same pack — same start state, same per-lane faults, same
    ``run_to`` chunk boundaries — advanced once with the fused
    basic-block kernels and once through the per-instruction ``_step``
    path must agree on every observable at every boundary: shared pc
    and cycle, per-lane state digests, and the full exit stream.
    """
    from repro.engine.batch import LockstepLanes
    from repro.engine.fused import compile_fused

    fused = compile_fused(program)
    assume(fused is not None)

    golden = Machine(program)
    golden.run(100_000)
    assert golden.halted, "generated program must halt fault-free"
    total, serial = golden.cycle, bytes(golden.serial)

    start = data.draw(st.integers(0, total - 1), label="start")
    machine = Machine(program)
    machine.run_to_cycle(start)
    state = machine.snapshot()

    n = data.draw(st.integers(2, 6), label="lanes")
    faults = []
    for lane in range(n):
        if data.draw(st.booleans(), label=f"memory_fault_{lane}"):
            faults.append(("mem",
                           data.draw(st.integers(0, RAM_SIZE - 1)),
                           data.draw(st.integers(0, 7))))
        else:
            faults.append(("reg",
                           data.draw(st.integers(1, 15)),
                           data.draw(st.integers(0, 31))))
    limit = 4 * total + 100
    steps = data.draw(st.lists(st.integers(1, total),
                               min_size=0, max_size=3),
                      label="chunks")
    targets = sorted({start + s for s in steps} | {limit})

    def observe(kernels):
        lanes = LockstepLanes(program, state, n, oracle=serial,
                              fused=kernels)
        for lane, (kind, a, b) in enumerate(faults):
            view = lanes.lane_view(lane)
            if kind == "mem":
                view.flip_bit(a, b)
            else:
                view.flip_register_bit(a, b)
        snaps = []
        for target in targets:
            lanes.run_to(target)
            snaps.append((lanes.pc, lanes.cycle,
                          {lanes.ids[pos]: lanes.digest(pos)
                           for pos in range(lanes.n)}))
        exits = {exit.lane: (exit.kind, exit.cycle, exit.trap,
                             exit.serial, exit.detections, exit.state)
                 for exit in lanes.pop_exits()}
        return snaps, exits

    assert observe(fused) == observe(None)
