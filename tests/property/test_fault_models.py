"""Property-based tests for the new fault-model family.

Hypothesis explores micro-program family × size × fault model
combinations and checks the two invariants the new domains add to the
methodology:

* pruned equivalence-class weights always sum to the unpruned fault
  space size — for every registered domain, including bursts (whose
  per-slot weight is the number of start positions, not 8), stuck-at
  (16 experiments per byte-slot) and pc (variable grouped-class
  weights);
* the stuck-at latch is cleared by exactly the first store covering
  the latched byte — before it the bit reads back forced, afterwards
  stores land unmodified ("write wins").
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import record_golden
from repro.faultspace import DOMAINS, get_domain
from repro.isa.cpu import Machine
from repro.programs import micro

#: family name -> (program factory, generated size range)
FAMILIES = {
    "counter": (micro.counter, (1, 3)),
    "memcopy": (micro.memcopy, (1, 3)),
    "checksum": (micro.checksum_loop, (1, 2)),
    "stack_echo": (micro.stack_echo, (1, 2)),
}

_GOLDEN_CACHE: dict = {}


def _golden(family: str, size: int):
    """Golden runs are deterministic; cache them across examples."""
    key = (family, size)
    if key not in _GOLDEN_CACHE:
        _GOLDEN_CACHE[key] = record_golden(FAMILIES[family][0](size))
    return _GOLDEN_CACHE[key]


@st.composite
def programs(draw):
    family = draw(st.sampled_from(sorted(FAMILIES)))
    low, high = FAMILIES[family][1]
    size = draw(st.integers(min_value=low, max_value=high))
    return _golden(family, size)


all_domains = st.sampled_from(sorted(DOMAINS))

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestClassCountInvariants:
    @SETTINGS
    @given(golden=programs(), domain=all_domains)
    def test_pruned_class_weights_sum_to_space_size(self, golden, domain):
        """Σ class weights == w for every registered fault model."""
        domain = get_domain(domain)
        partition = domain.build_partition(golden)
        space = domain.fault_space(golden)
        assert partition.total_weight == space.size
        live = sum(iv.weight_bits for iv in partition.live_classes())
        assert live + partition.known_no_effect_weight == space.size

    @SETTINGS
    @given(golden=programs(), domain=all_domains)
    def test_every_coordinate_locates_into_exactly_one_class(self, golden,
                                                             domain):
        """Classes partition the space: locate() is total and the
        located class's window really contains the coordinate."""
        domain = get_domain(domain)
        partition = domain.build_partition(golden)
        space = domain.fault_space(golden)
        step = max(1, space.size // 64)
        for index in range(0, space.size, step):
            coord = space.coordinate(index)
            interval = partition.locate(coord)
            assert interval.first_slot <= coord.slot <= interval.last_slot

    @SETTINGS
    @given(golden=programs(), domain=all_domains)
    def test_experiment_hooks_are_consistent(self, golden, domain):
        """index/coordinate round-trip and slot weights match counts."""
        domain = get_domain(domain)
        partition = domain.build_partition(golden)
        for interval in partition.live_classes():
            count = domain.experiment_count(interval)
            weights = domain.experiment_slot_weights(interval)
            assert len(weights) == count
            assert interval.length * sum(weights) == interval.weight_bits
            for idx, coord in enumerate(interval.experiments()):
                assert domain.experiment_index(interval, coord) == idx
                assert domain.experiment_coordinate(interval, idx) == coord


class TestStuckAtLatchSemantics:
    @SETTINGS
    @given(golden=programs(),
           slot_frac=st.floats(min_value=0.0, max_value=1.0),
           addr_frac=st.floats(min_value=0.0, max_value=1.0),
           bit=st.integers(min_value=0, max_value=7))
    def test_latch_cleared_exactly_at_first_covering_write(
            self, golden, slot_frac, addr_frac, bit):
        """The latch is armed at every cycle before the first store
        covering its byte and cleared exactly by that store.

        The latch is armed with the bit's *current* value, so the run
        provably follows the golden trajectory and the golden memory
        trace gives the exact release schedule — the property isolates
        the latch bookkeeping from fault-induced divergence.
        """
        slot = 1 + int(slot_frac * (golden.cycles - 1))
        addr = int(addr_frac * (golden.program.ram_size - 1))
        machine = Machine(golden.program)
        machine.run_to_cycle(slot - 1)
        value = (machine.ram[addr] >> bit) & 1
        machine.stuck_at(addr, bit, value)
        assert (machine.ram[addr] >> bit) & 1 == value
        # First golden write to this byte at or after the arming slot
        # (the trace expands multi-byte stores per covered byte).
        release = next((e.slot for e in golden.trace.accesses(addr)
                        if e.is_write and e.slot >= slot), None)
        if release is None:
            # No covering store: the latch stays armed to the end.
            machine.run(golden.cycles + 1)
            assert machine.halted
            assert machine._stuck == (addr, bit, value)
            return
        while machine.cycle < release:
            assert machine._stuck == (addr, bit, value)
            machine.step()
        assert machine._stuck is None

    @SETTINGS
    @given(golden=programs(),
           bit=st.integers(min_value=0, max_value=7),
           value=st.integers(min_value=0, max_value=1))
    def test_arming_forces_the_bit_immediately(self, golden, bit, value):
        """Arming writes the forced value into RAM on the spot."""
        machine = Machine(golden.program)
        machine.run_to_cycle(1)
        machine.stuck_at(0, bit, value)
        assert (machine.ram[0] >> bit) & 1 == value

    @SETTINGS
    @given(value=st.integers(min_value=0, max_value=1),
           bit=st.integers(min_value=0, max_value=7))
    def test_double_arm_rejected(self, value, bit):
        """The single-fault assumption: arming twice is an error."""
        import pytest

        golden = _golden("counter", 1)
        machine = Machine(golden.program)
        machine.run_to_cycle(1)
        machine.stuck_at(0, bit, value)
        with pytest.raises(ValueError):
            machine.stuck_at(0, bit, 1 - value)
